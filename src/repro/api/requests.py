"""Declarative, JSON-serializable request objects of the public API.

A request describes *what* to compute — queries, measure, ``k``,
thresholds — while the :class:`~repro.api.service.SimilarityService`
decides *how* to compute it.  The only execution input a caller provides
is an :class:`ExecutionPolicy`, and even that defaults to ``auto``: the
service picks the fastest path that is bit-identical to the sequential
reference scan (all fast paths are exact by construction; the
equivalence tests pin this).

Every request round-trips through plain JSON (``to_json``/``from_json``)
so requests can be queued, logged, or shipped over a wire unchanged.
Measures are described by :class:`MeasureSpec`, either directly from a
paper-style name (``"MS_ip_te_pll"``, ``"BW+MS_ip_te_pll"``) or through
the fluent :class:`MeasureBuilder`::

    spec = (MeasureSpec.build()
            .module_sets()
            .importance_projection()
            .type_equivalence()
            .label_levenshtein()
            .spec())
    assert spec.name == "MS_ip_te_pll"
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterable, Mapping

__all__ = [
    "ExecutionMode",
    "ExecutionPolicy",
    "MeasureSpec",
    "MeasureBuilder",
    "SearchRequest",
    "PairwiseRequest",
    "ClusterRequest",
]


class ExecutionMode(str, Enum):
    """How a request is executed; ``AUTO`` lets the service choose."""

    AUTO = "auto"
    SEQUENTIAL = "sequential"
    PRUNED = "pruned"
    PARALLEL = "parallel"


@dataclass(frozen=True)
class ExecutionPolicy:
    """Execution knobs of one request.

    ``mode`` selects the path; ``workers`` and ``chunk_size`` are the
    worker/budget knobs of the process-pool backend (``chunk_size``
    bounds how many queries one pool task amortises its caches over);
    ``prune`` toggles the frontier-pruned top-k on the accelerated
    paths.  ``AUTO`` routes to the pool when workers are granted and the
    request is pool-eligible, otherwise to the pruned/cached in-process
    batch — never to the slow sequential scan.

    Two knobs drive the persistent layer (:mod:`repro.store`):
    ``cache_dir`` names a warm-start store directory — the service
    attaches it on first use, so even a service opened without one can
    be warmed per request; ``preselect`` toggles the inverted-index
    candidate preselection that ``AUTO`` applies to annotation measures
    whenever an index is loaded (bit-identical by construction — the
    admission bound is score-safe).

    The retry knobs shape the attached store's
    :class:`~repro.store.resilience.RetryPolicy` for transient
    ``database is locked`` contention: ``retry_attempts`` total tries
    (1 = fail fast), backing off exponentially from
    ``retry_base_delay`` seconds up to ``retry_max_delay`` (with
    jitter).  They apply when *this policy's* ``cache_dir`` causes the
    store attachment; a store attached earlier keeps its own policy.
    """

    mode: ExecutionMode = ExecutionMode.AUTO
    workers: int | None = None
    chunk_size: int = 16
    prune: bool = True
    cache_dir: str | None = None
    preselect: bool = True
    retry_attempts: int = 5
    retry_base_delay: float = 0.02
    retry_max_delay: float = 0.5

    def __post_init__(self) -> None:
        if not isinstance(self.mode, ExecutionMode):
            object.__setattr__(self, "mode", ExecutionMode(str(self.mode)))
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be positive, got {self.workers}")
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {self.chunk_size}")
        if self.cache_dir is not None:
            object.__setattr__(self, "cache_dir", str(self.cache_dir))
        if self.retry_attempts < 1:
            raise ValueError(f"retry_attempts must be >= 1, got {self.retry_attempts}")
        if self.retry_base_delay < 0 or self.retry_max_delay < 0:
            raise ValueError("retry delays must be non-negative")

    def retry_policy(self):
        """The :class:`~repro.store.resilience.RetryPolicy` these knobs describe."""
        from ..store.resilience import RetryPolicy

        return RetryPolicy(
            attempts=self.retry_attempts,
            base_delay=self.retry_base_delay,
            max_delay=self.retry_max_delay,
        )

    # -- constructors --------------------------------------------------------

    @classmethod
    def auto(
        cls,
        *,
        workers: int | None = None,
        prune: bool = True,
        cache_dir: str | None = None,
        preselect: bool = True,
    ) -> "ExecutionPolicy":
        return cls(
            mode=ExecutionMode.AUTO,
            workers=workers,
            prune=prune,
            cache_dir=cache_dir,
            preselect=preselect,
        )

    @classmethod
    def sequential(cls) -> "ExecutionPolicy":
        return cls(mode=ExecutionMode.SEQUENTIAL)

    @classmethod
    def pruned(cls) -> "ExecutionPolicy":
        return cls(mode=ExecutionMode.PRUNED)

    @classmethod
    def parallel(cls, workers: int = 2, *, chunk_size: int = 16, prune: bool = True) -> "ExecutionPolicy":
        return cls(
            mode=ExecutionMode.PARALLEL, workers=workers, chunk_size=chunk_size, prune=prune
        )

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "mode": self.mode.value,
            "workers": self.workers,
            "chunk_size": self.chunk_size,
            "prune": self.prune,
            "cache_dir": self.cache_dir,
            "preselect": self.preselect,
            "retry_attempts": self.retry_attempts,
            "retry_base_delay": self.retry_base_delay,
            "retry_max_delay": self.retry_max_delay,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExecutionPolicy":
        cache_dir = data.get("cache_dir")
        return cls(
            mode=ExecutionMode(data.get("mode", "auto")),
            workers=data.get("workers"),
            chunk_size=int(data.get("chunk_size", 16)),
            prune=bool(data.get("prune", True)),
            cache_dir=str(cache_dir) if cache_dir is not None else None,
            preselect=bool(data.get("preselect", True)),
            retry_attempts=int(data.get("retry_attempts", 5)),
            retry_base_delay=float(data.get("retry_base_delay", 0.02)),
            retry_max_delay=float(data.get("retry_max_delay", 0.5)),
        )


# The preprocessor codes are fixed by the paper; everything else is
# sourced from the live registries so a measure the engine can
# instantiate is never rejected at request-build time.
_PREPROCESSORS = ("np", "ip")


def _vocabulary():
    """(kinds, annotations, preselections, module schemes, mappings)."""
    from ..core.configs import available_module_configs
    from ..core.mapping import MAPPINGS
    from ..core.preselection import PRESELECTIONS
    from ..core.registry import ANNOTATION_MEASURES, STRUCTURAL_KINDS

    return (
        STRUCTURAL_KINDS,
        ANNOTATION_MEASURES,
        PRESELECTIONS,
        available_module_configs(),
        MAPPINGS,
    )


@dataclass(frozen=True)
class MeasureSpec:
    """A similarity-measure configuration, addressed by its paper name.

    The name follows the grammar of :mod:`repro.core.registry`
    (``MS_ip_te_pll``, ``BW``, ensembles as ``"A+B"``).  Construction
    validates the name's structure so malformed requests fail at request
    build time, not mid-execution.
    """

    name: str

    def __post_init__(self) -> None:
        name = self.name.strip()
        if not name:
            raise ValueError("measure name must not be empty")
        object.__setattr__(self, "name", name)
        for member in name.split("+"):
            self._validate_member(member.strip())

    @staticmethod
    def _validate_member(member: str) -> None:
        kinds, annotations, preselections, schemes, mappings = _vocabulary()
        if member in annotations:
            return
        parts = member.split("_")
        if len(parts) < 4:
            raise ValueError(
                f"structural measure names have the form KIND_prep_presel_pconfig, got {member!r}"
            )
        kind, prep, presel, pconfig, *rest = parts
        if kind not in kinds:
            raise ValueError(f"unknown topological comparison {kind!r} in {member!r}")
        if prep not in _PREPROCESSORS:
            raise ValueError(f"unknown preprocessing code {prep!r} in {member!r}")
        if presel not in preselections:
            raise ValueError(f"unknown preselection code {presel!r} in {member!r}")
        if pconfig not in schemes:
            raise ValueError(f"unknown module comparison scheme {pconfig!r} in {member!r}")
        for extra in rest:
            if extra not in mappings and extra != "nonorm":
                raise ValueError(f"unknown measure name suffix {extra!r} in {member!r}")

    @property
    def is_ensemble(self) -> bool:
        return "+" in self.name

    @classmethod
    def of(cls, measure: "MeasureSpec | str") -> "MeasureSpec":
        """Coerce a name or spec to a spec."""
        return measure if isinstance(measure, MeasureSpec) else cls(str(measure))

    @classmethod
    def ensemble(cls, *members: "MeasureSpec | str") -> "MeasureSpec":
        """The mean ensemble of the given measures (``"A+B"``)."""
        if len(members) < 2:
            raise ValueError("an ensemble needs at least two members")
        return cls("+".join(cls.of(member).name for member in members))

    @classmethod
    def build(cls) -> "MeasureBuilder":
        """Start a fluent builder for a structural configuration."""
        return MeasureBuilder()

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MeasureSpec":
        return cls(name=str(data["name"]))


class MeasureBuilder:
    """Fluent builder of structural :class:`MeasureSpec` names.

    Every setter returns the builder; :meth:`spec` assembles and
    validates the final name.  Defaults mirror the registry grammar:
    maximum-weight mapping (``mw``) and normalised scores are implied
    and omitted from the name.
    """

    def __init__(self) -> None:
        self._kind = "MS"
        self._prep = "np"
        self._presel = "ta"
        self._scheme = "pw0"
        self._mapping = "mw"
        self._normalize = True

    # -- topological comparison ---------------------------------------------

    def kind(self, kind: str) -> "MeasureBuilder":
        self._kind = kind
        return self

    def module_sets(self) -> "MeasureBuilder":
        return self.kind("MS")

    def path_sets(self) -> "MeasureBuilder":
        return self.kind("PS")

    def graph_edit(self) -> "MeasureBuilder":
        return self.kind("GE")

    # -- preprocessing -------------------------------------------------------

    def preprocessing(self, code: str) -> "MeasureBuilder":
        self._prep = code
        return self

    def importance_projection(self) -> "MeasureBuilder":
        return self.preprocessing("ip")

    def no_preprocessing(self) -> "MeasureBuilder":
        return self.preprocessing("np")

    # -- pair preselection ---------------------------------------------------

    def preselection(self, code: str) -> "MeasureBuilder":
        self._presel = code
        return self

    def all_pairs(self) -> "MeasureBuilder":
        return self.preselection("ta")

    def type_equivalence(self) -> "MeasureBuilder":
        return self.preselection("te")

    def strict_type_match(self) -> "MeasureBuilder":
        return self.preselection("tm")

    # -- module comparison scheme -------------------------------------------

    def module_scheme(self, code: str) -> "MeasureBuilder":
        self._scheme = code
        return self

    def label_levenshtein(self) -> "MeasureBuilder":
        """Label edit distance (``pll``), the paper's best scheme."""
        return self.module_scheme("pll")

    def label_match(self) -> "MeasureBuilder":
        return self.module_scheme("plm")

    def weighted_attributes(self, *, tuned: bool = False) -> "MeasureBuilder":
        return self.module_scheme("pw3" if tuned else "pw0")

    # -- mapping and normalisation ------------------------------------------

    def mapping(self, code: str) -> "MeasureBuilder":
        self._mapping = code
        return self

    def greedy_mapping(self) -> "MeasureBuilder":
        return self.mapping("greedy")

    def unnormalized(self) -> "MeasureBuilder":
        self._normalize = False
        return self

    # -- assembly ------------------------------------------------------------

    def name(self) -> str:
        parts = [self._kind, self._prep, self._presel, self._scheme]
        if self._mapping != "mw":
            parts.append(self._mapping)
        if not self._normalize:
            parts.append("nonorm")
        return "_".join(parts)

    def spec(self) -> MeasureSpec:
        return MeasureSpec(self.name())


def _identifier_tuple(value: Iterable[str] | None) -> tuple[str, ...] | None:
    if value is None:
        return None
    return tuple(str(item) for item in value)


@dataclass(frozen=True)
class SearchRequest:
    """Top-``k`` similarity search for one or many query workflows.

    ``queries=None`` searches with *every* repository workflow as the
    query (the all-queries batch of the paper's retrieval experiment);
    ``candidates`` optionally restricts the searched pool.
    """

    measure: MeasureSpec
    queries: tuple[str, ...] | None = None
    k: int = 10
    candidates: tuple[str, ...] | None = None
    policy: ExecutionPolicy = field(default_factory=ExecutionPolicy)

    def __post_init__(self) -> None:
        object.__setattr__(self, "measure", MeasureSpec.of(self.measure))
        object.__setattr__(self, "queries", _identifier_tuple(self.queries))
        object.__setattr__(self, "candidates", _identifier_tuple(self.candidates))
        if self.k < 1:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.queries is not None and not self.queries:
            raise ValueError("queries must be None (all workflows) or non-empty")

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "search",
            "measure": self.measure.to_dict(),
            "queries": list(self.queries) if self.queries is not None else None,
            "k": self.k,
            "candidates": list(self.candidates) if self.candidates is not None else None,
            "policy": self.policy.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchRequest":
        return cls(
            measure=MeasureSpec.from_dict(data["measure"]),
            queries=data.get("queries"),
            k=int(data.get("k", 10)),
            candidates=data.get("candidates"),
            policy=ExecutionPolicy.from_dict(data.get("policy", {})),
        )

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, payload: str) -> "SearchRequest":
        return cls.from_dict(json.loads(payload))


@dataclass(frozen=True)
class PairwiseRequest:
    """Similarity of every unordered pair of the selected workflows.

    ``workflows=None`` scores the whole repository — the input of
    duplicate detection and clustering.
    """

    measure: MeasureSpec
    workflows: tuple[str, ...] | None = None
    policy: ExecutionPolicy = field(default_factory=ExecutionPolicy)

    def __post_init__(self) -> None:
        object.__setattr__(self, "measure", MeasureSpec.of(self.measure))
        object.__setattr__(self, "workflows", _identifier_tuple(self.workflows))

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "pairwise",
            "measure": self.measure.to_dict(),
            "workflows": list(self.workflows) if self.workflows is not None else None,
            "policy": self.policy.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PairwiseRequest":
        return cls(
            measure=MeasureSpec.from_dict(data["measure"]),
            workflows=data.get("workflows"),
            policy=ExecutionPolicy.from_dict(data.get("policy", {})),
        )

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, payload: str) -> "PairwiseRequest":
        return cls.from_dict(json.loads(payload))


@dataclass(frozen=True)
class ClusterRequest:
    """Flat clustering of the repository's similarity graph."""

    measure: MeasureSpec
    threshold: float = 0.7
    linkage: str = "single"
    workflows: tuple[str, ...] | None = None
    policy: ExecutionPolicy = field(default_factory=ExecutionPolicy)

    def __post_init__(self) -> None:
        object.__setattr__(self, "measure", MeasureSpec.of(self.measure))
        object.__setattr__(self, "workflows", _identifier_tuple(self.workflows))
        if self.linkage not in ("single", "average"):
            raise ValueError(f"unknown linkage {self.linkage!r}; use 'single' or 'average'")
        # No upper bound: unnormalized (nonorm) measures score above 1,
        # and thresholds in that range are the meaningful ones for them.
        if self.threshold < 0.0:
            raise ValueError(f"threshold must be non-negative, got {self.threshold}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "cluster",
            "measure": self.measure.to_dict(),
            "threshold": self.threshold,
            "linkage": self.linkage,
            "workflows": list(self.workflows) if self.workflows is not None else None,
            "policy": self.policy.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClusterRequest":
        return cls(
            measure=MeasureSpec.from_dict(data["measure"]),
            threshold=float(data.get("threshold", 0.7)),
            linkage=str(data.get("linkage", "single")),
            workflows=data.get("workflows"),
            policy=ExecutionPolicy.from_dict(data.get("policy", {})),
        )

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, payload: str) -> "ClusterRequest":
        return cls.from_dict(json.loads(payload))


#: Requests dispatchable by ``kind`` (used by ``request_from_dict``).
_REQUEST_KINDS = {
    "search": SearchRequest,
    "pairwise": PairwiseRequest,
    "cluster": ClusterRequest,
}


def request_from_dict(data: Mapping[str, Any]):
    """Rebuild any request from its ``to_dict`` payload (``kind``-tagged)."""
    kind = data.get("kind")
    request_class = _REQUEST_KINDS.get(str(kind))
    if request_class is None:
        raise ValueError(f"unknown request kind {kind!r}; expected one of {sorted(_REQUEST_KINDS)}")
    return request_class.from_dict(data)


__all__.append("request_from_dict")
