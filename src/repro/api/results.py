"""Unified responses of the public API.

Every service operation — search, pairwise scoring, clustering — answers
with a :class:`ResultSet` that carries the scores/ranks payload *and*
the execution story: which path actually ran (sequential, pruned,
cached, parallel), how long it took, and the prune/cache statistics of
the acceleration layer.

Equality deliberately covers only the payload: two ``ResultSet``s are
``==`` when their hits, scores, ranks, pairs and clusters match bit for
bit, regardless of which execution path produced them or how long it
took.  This is what lets the equivalence tests state the service's core
contract — *every policy returns the same ResultSet* — as a plain
assertion.  Serialization (``to_json``/``from_json``) round-trips the
diagnostics too.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

__all__ = [
    "SearchHit",
    "QueryResult",
    "ExecutionDiagnostics",
    "ResultSet",
]


@dataclass(frozen=True)
class SearchHit:
    """One ranked hit of a similarity search."""

    workflow_id: str
    similarity: float
    rank: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "workflow_id": self.workflow_id,
            "similarity": self.similarity,
            "rank": self.rank,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchHit":
        return cls(
            workflow_id=str(data["workflow_id"]),
            similarity=float(data["similarity"]),
            rank=int(data["rank"]),
        )


@dataclass(frozen=True)
class QueryResult:
    """The ranked hits of one query under one measure."""

    query_id: str
    measure: str
    hits: tuple[SearchHit, ...]

    def identifiers(self) -> list[str]:
        return [hit.workflow_id for hit in self.hits]

    def similarity_of(self, workflow_id: str) -> float | None:
        for hit in self.hits:
            if hit.workflow_id == workflow_id:
                return hit.similarity
        return None

    def __len__(self) -> int:
        return len(self.hits)

    def __iter__(self) -> Iterator[SearchHit]:
        return iter(self.hits)

    def to_dict(self) -> dict[str, Any]:
        return {
            "query_id": self.query_id,
            "measure": self.measure,
            "hits": [hit.to_dict() for hit in self.hits],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QueryResult":
        return cls(
            query_id=str(data["query_id"]),
            measure=str(data["measure"]),
            hits=tuple(SearchHit.from_dict(entry) for entry in data.get("hits", [])),
        )


@dataclass
class ExecutionDiagnostics:
    """How a request was executed (never part of result equality).

    ``path`` is the path that actually ran: ``"sequential"`` (reference
    per-query scan), ``"pruned"`` (frontier-pruned top-k), ``"cached"``
    (accelerated full scan), ``"indexed"`` (inverted-index candidate
    preselection for annotation measures), or ``"parallel"`` (process
    pool).  ``requested_mode`` echoes the policy; when the two differ,
    ``notes`` says why (e.g. the pool was unavailable and the service
    fell back).

    ``index_candidates`` counts the candidates admitted by the inverted
    index across the request's queries (``None`` off the indexed path);
    on a preselected search it is strictly below ``queries × corpus``.
    ``cache_warm_hits`` counts pair-score lookups served from entries
    loaded out of a persistent :class:`~repro.store.WorkflowStore`
    during *this* request — a warm-started service shows a positive
    number where a cold one recomputes.

    ``trace_id`` correlates this execution with the tracing layer: when
    a recording :class:`~repro.obs.tracing.Tracer` is installed, it is
    the id of the trace whose span tree contains this request's service
    and engine spans (``Tracer.export_trace(trace_id)``; also the
    ``X-Trace-Id`` response header of the serving layer).  ``None`` when
    tracing is disabled — and, like every diagnostics field, never part
    of result equality.

    Three fields tell the resilience story.  ``degraded`` is ``True``
    when any acceleration tier (store warm-start, inverted index,
    process pool) faulted during the request and the service fell back
    down the ladder — the *answer is still exact* (every fallback tier
    is bit-identical to the sequential seed path), only slower.
    ``degradation_reason`` names the first fault that forced the
    fallback (including store quarantines that happened while serving
    this request); ``retry_attempts`` counts the transient
    ``database is locked`` retries the attached store performed for
    this request under its :class:`~repro.store.resilience.RetryPolicy`.
    """

    path: str
    requested_mode: str
    seconds: float = 0.0
    workers: int | None = None
    prune: dict[str, int] | None = None
    caches: list[dict[str, Any]] = field(default_factory=list)
    invalidations: dict[str, int] | None = None
    index_candidates: int | None = None
    cache_warm_hits: int | None = None
    degraded: bool = False
    degradation_reason: str | None = None
    retry_attempts: int = 0
    notes: tuple[str, ...] = ()
    trace_id: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "requested_mode": self.requested_mode,
            "seconds": self.seconds,
            "workers": self.workers,
            "prune": dict(self.prune) if self.prune is not None else None,
            "caches": [dict(entry) for entry in self.caches],
            "invalidations": dict(self.invalidations) if self.invalidations is not None else None,
            "index_candidates": self.index_candidates,
            "cache_warm_hits": self.cache_warm_hits,
            "degraded": self.degraded,
            "degradation_reason": self.degradation_reason,
            "retry_attempts": self.retry_attempts,
            "notes": list(self.notes),
            "trace_id": self.trace_id,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExecutionDiagnostics":
        index_candidates = data.get("index_candidates")
        cache_warm_hits = data.get("cache_warm_hits")
        reason = data.get("degradation_reason")
        return cls(
            path=str(data.get("path", "unknown")),
            requested_mode=str(data.get("requested_mode", "auto")),
            seconds=float(data.get("seconds", 0.0)),
            workers=data.get("workers"),
            prune=_normalized_counters(data.get("prune")),
            caches=[dict(entry) for entry in data.get("caches", [])],
            invalidations=_normalized_counters(data.get("invalidations")),
            index_candidates=int(index_candidates) if index_candidates is not None else None,
            cache_warm_hits=int(cache_warm_hits) if cache_warm_hits is not None else None,
            degraded=bool(data.get("degraded", False)),
            degradation_reason=str(reason) if reason is not None else None,
            retry_attempts=int(data.get("retry_attempts", 0)),
            notes=tuple(data.get("notes", ())),
            trace_id=(
                str(data["trace_id"]) if data.get("trace_id") is not None else None
            ),
        )


def _normalized_counters(data: "Mapping[str, Any] | None") -> dict[str, Any] | None:
    """A fresh dict with int-coerced counters (JSON round-trip exactness).

    The serving layer ships diagnostics over the wire and back; the
    prune section nests per-bound counters (``pruned_by_bound``), so the
    copy recurses one level and coerces leaf counts back to ``int`` —
    ``from_dict(to_dict())`` must compare equal field for field.
    """
    if data is None:
        return None
    normalized: dict[str, Any] = {}
    for key, value in data.items():
        if isinstance(value, Mapping):
            normalized[str(key)] = {str(k): int(v) for k, v in value.items()}
        else:
            normalized[str(key)] = int(value)
    return normalized


@dataclass(frozen=True)
class ResultSet:
    """The unified response of every service operation.

    Exactly one payload family is populated, selected by ``kind``:

    * ``"search"`` — ``queries``: one :class:`QueryResult` per query, in
      request order;
    * ``"pairwise"`` — ``pairs``: ``(first_id, second_id, similarity)``
      triples in deterministic ``(earlier, later)`` pool order;
    * ``"cluster"`` — ``clusters``: tuples of workflow identifiers
      (members sorted), largest cluster first.

    ``diagnostics`` is excluded from equality and ordering; see the
    module docstring.
    """

    kind: str
    queries: tuple[QueryResult, ...] = ()
    pairs: tuple[tuple[str, str, float], ...] = ()
    clusters: tuple[tuple[str, ...], ...] = ()
    diagnostics: ExecutionDiagnostics | None = field(default=None, compare=False)

    # -- search accessors ----------------------------------------------------

    def __len__(self) -> int:
        if self.kind == "pairwise":
            return len(self.pairs)
        if self.kind == "cluster":
            return len(self.clusters)
        return len(self.queries)

    def __iter__(self) -> Iterator[QueryResult]:
        return iter(self.queries)

    def for_query(self, query_id: str) -> QueryResult:
        for result in self.queries:
            if result.query_id == query_id:
                return result
        raise KeyError(f"no result for query {query_id!r}")

    def result_tuples(self) -> list[list[tuple[str, float, int]]]:
        """The search payload as plain tuples (equivalence-test fodder)."""
        return [
            [(hit.workflow_id, hit.similarity, hit.rank) for hit in result.hits]
            for result in self.queries
        ]

    def pair_scores(self) -> dict[tuple[str, str], float]:
        """The pairwise payload as the classic ``{(a, b): score}`` mapping."""
        return {(first, second): value for first, second, value in self.pairs}

    def cluster_sets(self) -> list[set[str]]:
        """The cluster payload as the classic list-of-sets shape."""
        return [set(cluster) for cluster in self.clusters]

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"kind": self.kind}
        if self.kind == "search":
            payload["queries"] = [result.to_dict() for result in self.queries]
        elif self.kind == "pairwise":
            payload["pairs"] = [list(pair) for pair in self.pairs]
        elif self.kind == "cluster":
            payload["clusters"] = [list(cluster) for cluster in self.clusters]
        payload["diagnostics"] = (
            self.diagnostics.to_dict() if self.diagnostics is not None else None
        )
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ResultSet":
        diagnostics_data = data.get("diagnostics")
        return cls(
            kind=str(data["kind"]),
            queries=tuple(
                QueryResult.from_dict(entry) for entry in data.get("queries", [])
            ),
            pairs=tuple(
                (str(first), str(second), float(value))
                for first, second, value in data.get("pairs", [])
            ),
            clusters=tuple(
                tuple(str(member) for member in cluster)
                for cluster in data.get("clusters", [])
            ),
            diagnostics=(
                ExecutionDiagnostics.from_dict(diagnostics_data)
                if diagnostics_data is not None
                else None
            ),
        )

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, payload: str) -> "ResultSet":
        return cls.from_dict(json.loads(payload))
