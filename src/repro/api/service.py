"""The :class:`SimilarityService` facade — the package's public surface.

One service is opened over one :class:`WorkflowRepository` and answers
declarative requests (:class:`SearchRequest`, :class:`PairwiseRequest`,
:class:`ClusterRequest`) with unified :class:`ResultSet` responses.  The
caller never chooses between ``search`` and ``search_batch`` or manages
an :class:`~repro.perf.engine.AccelerationContext`: the service owns the
context (bound to the repository's profile store) and routes every
request to the fastest path that is bit-identical to the sequential
reference scan — postings-admitted candidate preselection where a
:class:`~repro.perf.bounds.AdmissionBound` certifies the measure
(``BW``/``BT`` token overlap, single-label-Levenshtein ``MS`` character
bags), frontier-pruned top-k for every measure with a pruning
:class:`~repro.perf.bounds.CertifiedBound` (``MS``, ``PS``, fully
certified ensembles), cached full scans otherwise, a process pool when
the policy grants workers.  The
:class:`~repro.api.results.ExecutionDiagnostics` attached to every
response records which path actually ran.

Long-lived services keep their repositories *mutable*:
:meth:`SimilarityService.add_workflows` and
:meth:`SimilarityService.remove_workflows` update the corpus in place
with precise invalidation — only the profiles and fingerprint memos of
the affected workflows are dropped, while the value-keyed module-pair
score caches (the expensive part) survive and keep serving the remaining
corpus.  Results after any mutation sequence are bit-identical to a
fresh service over the same corpus; the API tests pin this.

State also outlives the process: a service opened with a ``cache_dir``
attaches a :class:`~repro.store.WorkflowStore`, warm-starting its
module-pair score caches (and, when the persisted snapshot matches the
corpus, the inverted annotation index) from disk.
:meth:`SimilarityService.persist` writes the snapshot, scores and index
back; ``SimilarityService.open(cache_dir=...)`` with no corpus source
reopens the persisted snapshot directly and returns bit-identical
results to the service that wrote it — the warm-start tests pin this.

**Resilience.**  Every acceleration tier is optional: when the store,
the inverted index or the process pool faults mid-request, the service
falls back tier by tier — indexed → parallel → accelerated batch →
sequential exact scan — and still answers, bit-identically, because
every tier is pinned equivalent to the sequential seed path.  A store
that fails verification (on open or mid-query) is *quarantined* to
``<cache_dir>/quarantine/<timestamp>/`` and rebuilt cold from the live
repository — corrupted state is never silently trusted and never fatal.
The :class:`~repro.api.results.ExecutionDiagnostics` of the affected
request records ``degraded``, ``degradation_reason`` and the
``retry_attempts`` spent on transient lock contention.
"""

from __future__ import annotations

import os
import sqlite3
import time
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from ..core.framework import RankedWorkflow, SimilarityFramework
from ..core.registry import all_configuration_names
from ..obs.registry import get_registry
from ..obs.tracing import get_tracer
from ..perf.bounds import (
    AdmissionBound,
    LabelBagIndex,
    find_admission,
    find_frontier_bound,
)
from ..perf.engine import (
    AccelerationContext,
    PruneStats,
    bounded_top_k,
    supports_pruned_top_k,
)
from ..repository.repository import RepositoryStatistics, WorkflowRepository
from ..repository.search import SearchResultList, SimilaritySearchEngine
from ..store import (
    InvertedAnnotationIndex,
    RetryPolicy,
    StoreCorruptionError,
    WorkflowStore,
    corpus_fingerprint,
    quarantine_store,
)
from ..store.resilience import is_locked_error
from ..store.sql_admission import SqlAdmissionPlanner
from ..store.workflow_store import STORE_FILENAME
from ..workflow.model import Workflow
from .requests import (
    ClusterRequest,
    ExecutionMode,
    PairwiseRequest,
    SearchRequest,
)
from .results import ExecutionDiagnostics, QueryResult, ResultSet, SearchHit

__all__ = ["SimilarityService"]


class SimilarityService:
    """Declarative similarity operations over one workflow repository."""

    def __init__(
        self,
        repository: WorkflowRepository,
        *,
        framework: SimilarityFramework | None = None,
        cache_dir: "str | Path | None" = None,
    ) -> None:
        self.repository = repository
        #: The execution layer.  Internal: requests should go through the
        #: service methods, which add routing, diagnostics and precise
        #: invalidation on top.
        self.engine = SimilaritySearchEngine(repository, framework)
        #: Summary of the most recent :meth:`remove_workflows` call.
        self.last_invalidation: dict[str, int] | None = None
        #: The attached persistent store, if any (see :meth:`attach_cache_dir`).
        self.store: WorkflowStore | None = None
        #: The inverted annotation index, once built or loaded.
        self.index: InvertedAnnotationIndex | None = None
        #: The label character-bag postings powering the ``MS``
        #: admission prefilter, once built or loaded.
        self.label_bags: LabelBagIndex | None = None
        self._store_trusted = False
        #: Every quarantine/rebuild/degradation event of this service's
        #: lifetime, oldest first (dicts with at least an ``"event"`` key).
        self.degradation_log: list[dict[str, str]] = []
        #: Degradation events that happened outside a request (open-time
        #: recovery, persist-time recovery); drained into the *next*
        #: request's diagnostics so callers always see them.
        self._pending_degradations: list[str] = []
        #: Lock retries of stores that have since been closed/replaced
        #: (keeps :attr:`ExecutionDiagnostics.retry_attempts` monotonic
        #: across a mid-request store swap).
        self._retired_retries = 0
        self._fault_injector = None
        registry = get_registry()
        self._operations_counter = registry.counter(
            "repro_service_operations_total",
            "Service operations executed, by operation and execution path.",
            labels=("operation", "path"),
        )
        self._degraded_counter = registry.counter(
            "repro_service_degraded_total",
            "Operations that degraded down the resilience ladder.",
            labels=("operation",),
        )
        if cache_dir is not None:
            self.attach_cache_dir(cache_dir)

    @classmethod
    def open(
        cls,
        source: "WorkflowRepository | str | Path | None" = None,
        *,
        framework: SimilarityFramework | None = None,
        cache_dir: "str | Path | None" = None,
    ) -> "SimilarityService":
        """Open a service over a repository, a corpus file, or a cache dir.

        With only ``source``, behaves as before.  With only
        ``cache_dir``, the corpus is the persisted snapshot of that
        directory's :class:`~repro.store.WorkflowStore` — the warm-start
        path, bit-identical to the service that called
        :meth:`persist`.  With both, the corpus comes from ``source``
        and the store is attached for its caches (the persisted index is
        only trusted when the snapshot fingerprint matches the corpus).

        The store is verified before it is trusted.  A corrupted store
        is quarantined; when its snapshot table is still intact the
        corpus is salvaged from it and the store rebuilt (the first
        request's diagnostics report the degradation), otherwise a
        :exc:`~repro.store.StoreCorruptionError` explains how to rebuild
        from a corpus source.
        """
        if source is None:
            if cache_dir is None:
                raise ValueError("open() needs a corpus source, a cache_dir, or both")
            store: WorkflowStore | None = None
            report = None
            reason = ""
            try:
                store = WorkflowStore(cache_dir)
                report = store.verify()
            except (sqlite3.DatabaseError, ValueError) as error:
                if is_locked_error(error):
                    raise
                reason = str(error)
            if report is not None and report.ok:
                repository = store.load_repository()
                if repository is None:
                    raise ValueError(
                        f"no persisted repository snapshot in {str(cache_dir)!r}; "
                        "pass a corpus source or run persist()/`repro index build` first"
                    )
                service = cls(repository, framework=framework)
                service._adopt_store(store, trusted=True)
                return service
            # Corruption: quarantine, then salvage the snapshot if its
            # table (checksum + full payload decode) verified clean.
            if report is not None:
                reason = report.summary()
            salvaged = None
            if report is not None and report.table_ok("workflows"):
                try:
                    salvaged = store.load_repository()
                except Exception:
                    salvaged = None
            if store is not None:
                store.close()
            quarantine_dir = quarantine_store(
                Path(cache_dir) / STORE_FILENAME, reason=reason
            )
            if salvaged is None:
                raise StoreCorruptionError(
                    f"persisted store in {str(cache_dir)!r} is corrupted ({reason}) "
                    "and its snapshot could not be salvaged; the damaged files were "
                    f"moved to {quarantine_dir}; rebuild by reopening with a corpus "
                    "source (SimilarityService.open(corpus, cache_dir=...)) or "
                    "'repro index build'",
                    report=report,
                )
            service = cls(salvaged, framework=framework)
            service.build_index()
            rebuilt = WorkflowStore.rebuild(cache_dir, salvaged, index=service.index)
            service._adopt_store(rebuilt, trusted=True)
            event = (
                f"persisted store failed verification ({reason}); snapshot salvaged, "
                f"damaged files quarantined to {quarantine_dir}, store rebuilt"
            )
            service.degradation_log.append(
                {"event": event, "quarantine": str(quarantine_dir)}
            )
            service._pending_degradations.append(event)
            return service
        repository = (
            source
            if isinstance(source, WorkflowRepository)
            else WorkflowRepository.load(source)
        )
        return cls(repository, framework=framework, cache_dir=cache_dir)

    # -- introspection -------------------------------------------------------

    @property
    def context(self) -> AccelerationContext:
        """The acceleration context whose lifecycle this service owns."""
        return self.engine.context

    def measures(self) -> list[str]:
        """All measure names of the paper's configuration sweep."""
        return all_configuration_names()

    def statistics(self) -> RepositoryStatistics:
        return self.repository.statistics()

    def warm(self) -> int:
        """Precompute every workflow profile; returns the module count."""
        return self.repository.profile_store.warm(self.repository.workflows())

    def __len__(self) -> int:
        return len(self.repository)

    def __contains__(self, identifier: str) -> bool:
        return identifier in self.repository

    # -- persistence ---------------------------------------------------------

    def attach_cache_dir(
        self, cache_dir: "str | Path", *, retry: "RetryPolicy | None" = None
    ) -> None:
        """Attach a persistent warm-start store to this service.

        The store's persisted pair scores are loaded into the score
        caches immediately (always safe: entries are keyed by attribute
        values, not corpus membership).  The persisted inverted index is
        loaded only when the store's snapshot fingerprint matches the
        live corpus — a preselection over a *different* corpus would not
        be score-safe.

        The store is verified first; one that fails verification is
        quarantined and rebuilt cold from the live repository (recorded
        in :attr:`degradation_log` and the next request's diagnostics) —
        a corrupted cache can slow this service down but never poison
        it.  ``retry`` overrides the store's lock-retry schedule.
        """
        store = self._open_store_resilient(cache_dir, retry)
        trusted = store.fingerprint() == corpus_fingerprint(self.repository)
        self._adopt_store(store, trusted=trusted)

    def _open_store_resilient(
        self, cache_dir: "str | Path", retry: "RetryPolicy | None"
    ) -> WorkflowStore:
        """Open + verify a store; quarantine and rebuild it on corruption.

        Only callable with a live repository (the rebuild source).
        Transient lock errors propagate — they are contention, not
        corruption, and quarantining a healthy store over one would
        throw away good caches.
        """
        reason = ""
        try:
            store = WorkflowStore(cache_dir, retry=retry)
        except (sqlite3.DatabaseError, ValueError) as error:
            if is_locked_error(error):
                raise
            reason = str(error)
        else:
            report = store.verify()
            if report.ok:
                return store
            reason = report.summary()
            store.close()
        quarantine_dir = quarantine_store(
            Path(cache_dir) / STORE_FILENAME, reason=reason
        )
        store = WorkflowStore.rebuild(
            cache_dir, self.repository, index=self.index, retry=retry
        )
        event = (
            f"persisted store failed verification ({reason}); damaged files "
            f"quarantined to {quarantine_dir}, store rebuilt from the live corpus"
        )
        self.degradation_log.append({"event": event, "quarantine": str(quarantine_dir)})
        self._pending_degradations.append(event)
        return store

    @property
    def store_trusted(self) -> bool:
        """Whether the attached store's snapshot matches the live corpus.

        Only a trusted store receives incremental write-through on
        corpus mutation and may serve its persisted index; an untrusted
        one still contributes its (value-keyed, always-safe) pair
        scores.  :meth:`persist` establishes trust by rewriting the
        snapshot.
        """
        return self.store is not None and self._store_trusted

    def _adopt_store(self, store: WorkflowStore, *, trusted: bool) -> None:
        if self.store is not None and self.store is not store:
            # Entries warm-loaded from the old store are not on the new
            # store's disk; re-mark them as new before switching.
            self.context.reset_warm_markers()
            self._retired_retries += self.store.retry_count
            self.store.close()
        self.store = store
        self._store_trusted = trusted
        store.fault_injector = self._fault_injector
        self.context.attach_store(store)
        # The persisted preselection structures are *not* materialized
        # here: a trusted store answers admission directly in SQL (the
        # "sql-indexed" tier), and the in-memory structures are lazily
        # loaded by _ensure_memory_structures only if that tier is
        # unavailable or faults.  Tenant/service open therefore never
        # pays index materialization.

    def _ensure_memory_structures(self, admission: AdmissionBound) -> bool:
        """Materialize the in-memory structure an admission needs, lazily.

        Only a *trusted* store may back the lazy load (same rule the
        eager warm load used to apply); a service without a store keeps
        whatever :meth:`build_index` built.  A load failure degrades —
        if the store can't decode its rows but the live corpus is
        intact, the structure is rebuilt from the corpus instead (the
        trusted store equals the corpus by fingerprint, so the rebuild
        is exact).  Returns whether the structure is now usable.
        """
        if admission.kind == "annotation":
            if self.index is not None:
                return True
            if not self.store_trusted:
                return False
            try:
                self.index = self.store.load_index()
            except Exception as error:
                self._pending_degradations.append(
                    f"persisted index failed to load ({error}); "
                    "rebuilt candidate preselection from the live corpus"
                )
                self.index = InvertedAnnotationIndex.build(
                    self.repository.workflows()
                )
            return self.index is not None
        if admission.kind == "label":
            if self.label_bags is not None:
                return True
            if not self.store_trusted:
                return False
            try:
                # None for stores written before label bags existed —
                # those simply keep the pruned (non-indexed) MS path.
                self.label_bags = self.store.load_label_bags()
            except Exception as error:
                self._pending_degradations.append(
                    f"persisted label bags failed to load ({error}); "
                    "rebuilt label preselection from the live corpus"
                )
                self.label_bags = LabelBagIndex.build(self.repository.workflows())
            return self.label_bags is not None
        return False

    def build_index(self) -> dict[str, int]:
        """(Re)build the preselection structures over the live corpus.

        Two postings structures are built: the inverted annotation index
        (``BW``/``BT`` admission) and the label character bags
        (single-label-Levenshtein ``MS`` admission).  Once built,
        ``AUTO`` requests for admission-certified measures route through
        score-safe candidate preselection, and both structures mutate in
        step with ``add_workflows``/``remove_workflows``.  Returns the
        combined size counters.
        """
        workflows = self.repository.workflows()
        self.index = InvertedAnnotationIndex.build(workflows)
        self.label_bags = LabelBagIndex.build(workflows)
        counters = self.index.stats()
        counters["label_bag_documents"] = len(self.label_bags)
        return counters

    def persist(self) -> dict[str, int]:
        """Write the corpus snapshot, pair scores and index to the store.

        Requires an attached ``cache_dir``.  A service later opened via
        ``SimilarityService.open(cache_dir=...)`` warm-starts from this
        state and returns bit-identical results.  Returns counters of
        what was written.
        """
        if self.store is None:
            raise ValueError(
                "no cache_dir attached; open the service with cache_dir=... "
                "or call attach_cache_dir() first"
            )
        try:
            return self._persist_once()
        except sqlite3.DatabaseError as error:
            if is_locked_error(error):
                # Contention, not corruption: the transaction already
                # rolled back and retried under the store's RetryPolicy;
                # exhausting it is the caller's signal to back off.
                raise
            # Corruption mid-persist: quarantine + rebuild, then persist
            # onto the fresh store (the in-memory caches are the source
            # of truth, so nothing is lost).
            self._pending_degradations.append(self._recover_store(error))
            if self.store is None:
                raise
            return self._persist_once()

    def _persist_once(self) -> dict[str, int]:
        # Skip the snapshot rewrite when it is already current (the
        # common repeated-persist case would otherwise delete and
        # reinsert every row per call).  A matching snapshot written
        # before label bags existed still gets one rewrite to backfill
        # the bag rows and their marker.
        snapshot_rewritten = (
            self.store.fingerprint() != corpus_fingerprint(self.repository)
            or not self.store.has_label_bags()
        )
        if snapshot_rewritten:
            self.store.save_repository(self.repository)
        pair_scores = self.context.persist_scores(self.store)
        if self.index is not None:
            postings = self.store.save_index(self.index)
        elif snapshot_rewritten:
            # Without a live index any postings persisted for the *old*
            # snapshot would be stale — drop them rather than let a
            # future warm start preselect over them.
            postings = self.store.clear_postings()
        else:
            # Snapshot unchanged and no in-memory index materialized
            # (the SQL tier serves admission directly): the persisted
            # postings still describe this exact corpus — keep them.
            postings = self.store.stats()["postings"]
        self._store_trusted = True
        return {
            "workflows": len(self.repository),
            "pair_scores": pair_scores,
            "postings": postings,
        }

    def close(self) -> None:
        """Release the persistent store's connection (if attached).

        Idempotent — safe to call any number of times, including after a
        failed persist (the store's transactions roll back in a
        ``finally``, so no file lock can be left behind).  The
        acceleration context stops consulting the store too — later
        requests simply run with whatever is already cached.
        """
        if self.store is not None:
            self._retired_retries += self.store.retry_count
            self.context.detach_store()
            self.store.close()
            self.store = None
            self._store_trusted = False

    # -- incremental repository mutation -------------------------------------

    def add_workflows(
        self, workflows: Iterable[Workflow], *, replace: bool = False
    ) -> int:
        """Add workflows to the live corpus; returns the number added.

        New workflows are profiled lazily on first use — no cache rebuild
        happens.  With ``replace=True`` an existing workflow of the same
        identifier is removed first (with precise invalidation), so a
        *changed* workflow object can never be served stale derived data.
        A *trusted* attached store (see :attr:`store_trusted`) and a
        built index follow the mutation row by row — snapshot and
        postings stay in sync while value-keyed pair scores are
        untouched.  An untrusted store is never written through: its
        snapshot describes some other corpus, and upserting rows into it
        would persist a corpus that never existed.
        """
        added = 0
        write_through = self.store_trusted
        for workflow in workflows:
            if replace and workflow.identifier in self.repository:
                self.remove_workflows([workflow.identifier])
            self.repository.add(workflow)
            if self.index is not None:
                self.index.add_workflow(workflow)
            if self.label_bags is not None:
                self.label_bags.add_workflow(workflow)
            if write_through:
                self.store.add_workflow(workflow)
            added += 1
        return added

    def remove_workflows(self, identifiers: Iterable[str]) -> list[str]:
        """Remove workflows and precisely invalidate their derived state.

        Drops the workflow/module profiles (including profiles of
        preprocessed projections) and the per-profile fingerprint memos;
        the value-keyed pair-score caches are kept, so subsequent
        requests stay warm.  A *trusted* attached store and a built
        index drop the same rows (see :meth:`add_workflows` on why an
        untrusted store is left alone).

        Identifiers not present in the repository are silently ignored —
        removal is idempotent, so replayed or queued removal requests
        cannot fail halfway.  Returns the identifiers *actually removed*
        in request order (an empty list when none matched); the
        invalidation counters of the removal are kept on
        :attr:`last_invalidation`.
        """
        requested = dict.fromkeys(str(identifier) for identifier in identifiers)
        removed = [identifier for identifier in requested if identifier in self.repository]
        write_through = self.store_trusted
        for identifier in removed:
            self.repository.remove(identifier)
            if self.index is not None:
                self.index.remove_workflow(identifier)
            if self.label_bags is not None:
                self.label_bags.remove_workflow(identifier)
            if write_through:
                self.store.remove_workflow(identifier)
        summary = self.context.invalidate_workflows(removed)
        summary["requested"] = len(requested)
        self.last_invalidation = summary
        return removed

    # -- request execution ---------------------------------------------------

    def search(self, request: "SearchRequest | Mapping[str, Any] | str") -> ResultSet:
        """Execute a top-``k`` search request; see :class:`SearchRequest`."""
        request = _coerce(request, SearchRequest)
        with get_tracer().span(
            "service.search",
            attributes={"measure": request.measure.name, "k": request.k},
        ) as span:
            return self._observe_operation(span, "search", self._search(request))

    def _search(self, request: SearchRequest) -> ResultSet:
        started = time.perf_counter()
        query_list = self._resolve(request.queries)
        candidates = (
            self._resolve(request.candidates) if request.candidates is not None else None
        )
        policy = request.policy
        self._ensure_policy_store(policy)
        warm_hits_before = self.context.warm_hits_total()
        retry_before = self._retry_total()
        mode = policy.mode
        measure_name = request.measure.name
        notes: list[str] = []
        results: list[SearchResultList] | None = None
        path = "sequential"
        workers_used: int | None = None
        prune_stats: dict[str, int] | None = None
        index_candidates: int | None = None
        degraded = False
        degradation_reason: str | None = None

        # The degradation ladder: sql-indexed → in-memory-indexed →
        # parallel → accelerated batch → sequential exact scan.  Each
        # tier is bit-identical to the next, so a faulting tier costs
        # time, never correctness; a request under SEQUENTIAL mode (or
        # one whose every acceleration tier faulted) lands on the
        # reference scan, which touches no store, no index and no pool.
        if mode is not ExecutionMode.SEQUENTIAL:
            admission: AdmissionBound | None = None
            if mode is ExecutionMode.AUTO and policy.preselect and candidates is None:
                try:
                    instance = self.engine._accelerated_measure(measure_name)
                    admission = find_admission(instance)
                except Exception:
                    # Real configuration errors (unknown measure)
                    # re-raise identically from the later tiers.
                    admission = None
            if admission is not None:
                indexed = None
                sql_tier = False
                declined = False
                # REPRO_FORCE_SQL_ADMISSION: "1" lets *only* the SQL
                # tier preselect (CI equivalence forcing — a silent
                # in-memory fallback would defeat the comparison), "0"
                # disables the SQL tier entirely (in-memory reference
                # runs for benchmarks/tests).  Unset prefers SQL when a
                # trusted store can answer, in-memory otherwise.
                sql_override = os.environ.get("REPRO_FORCE_SQL_ADMISSION", "")
                if sql_override != "0" and self._sql_admission_ready(admission):
                    try:
                        self._fire_fault("sql")
                        with get_tracer().span(
                            "engine.preselect",
                            attributes={"bound": admission.name, "tier": "sql"},
                        ) as stage:
                            admitted_sets = self._sql_admitted_sets(
                                query_list, admission
                            )
                            if admitted_sets is None:
                                # The admission declined a query in the
                                # batch; the in-memory structures would
                                # decline it identically, so skip them
                                # without materializing anything.
                                declined = True
                            else:
                                indexed = self._indexed_search(
                                    query_list,
                                    instance,
                                    admission,
                                    request.k,
                                    admitted_sets,
                                    prune=policy.prune,
                                )
                                sql_tier = True
                                stage.set_attribute("candidates", indexed[1])
                    except Exception as error:
                        degraded = True
                        degradation_reason = (
                            f"sql admission tier failed ({type(error).__name__}: {error})"
                        )
                        notes.append(
                            "sql candidate admission faulted; "
                            "fell back to the in-memory index"
                        )
                        if (
                            isinstance(error, sqlite3.DatabaseError)
                            and self.context.store_fault is None
                        ):
                            # A store-level fault — park it for the
                            # resilience epilogue (keep the store on
                            # contention, quarantine-and-rebuild on
                            # corruption), like any other store read.
                            self.context.store_fault = error
                if (
                    indexed is None
                    and not declined
                    and sql_override != "1"
                    and self._ensure_memory_structures(admission)
                ):
                    try:
                        self._fire_fault("indexed")
                        with get_tracer().span(
                            "engine.preselect", attributes={"bound": admission.name}
                        ) as stage:
                            admitted_sets = self._memory_admitted_sets(
                                query_list, admission
                            )
                            if admitted_sets is not None:
                                indexed = self._indexed_search(
                                    query_list,
                                    instance,
                                    admission,
                                    request.k,
                                    admitted_sets,
                                    prune=policy.prune,
                                )
                                stage.set_attribute("candidates", indexed[1])
                    except Exception as error:
                        degraded = True
                        if degradation_reason is None:
                            degradation_reason = (
                                f"indexed tier failed ({type(error).__name__}: {error})"
                            )
                        notes.append(
                            "inverted-index preselection faulted; "
                            "fell back to the accelerated batch"
                        )
                        # The faulting postings structure is no longer
                        # trusted for any later request either.
                        if admission.kind == "annotation":
                            self.index = None
                        else:
                            self.label_bags = None
                if indexed is not None:
                    results, index_candidates, batch_stats = indexed
                    path = "sql-indexed" if sql_tier else "indexed"
                    prune_stats = batch_stats.as_dict()
                    note = f"candidates admitted by bound {admission.name!r}"
                    if sql_tier:
                        note += " (sql pushdown)"
                    notes.append(note)
            wants_pool = results is None and (
                mode is ExecutionMode.PARALLEL
                or (mode is ExecutionMode.AUTO and policy.workers and policy.workers > 1)
            )
            if wants_pool:
                if candidates is None and len(query_list) > 1:
                    workers = policy.workers or 2
                    try:
                        self._fire_fault("parallel")
                        with get_tracer().span(
                            "engine.parallel", attributes={"workers": workers}
                        ):
                            results = self.engine.parallel_batch(
                                query_list,
                                measure_name,
                                k=request.k,
                                prune=policy.prune,
                                workers=workers,
                                chunk_size=policy.chunk_size,
                            )
                    except Exception as error:
                        degraded = True
                        if degradation_reason is None:
                            degradation_reason = (
                                f"parallel tier failed ({type(error).__name__}: {error})"
                            )
                        notes.append(
                            "process pool faulted mid-run; "
                            "fell back to the in-process batch"
                        )
                        results = None
                    else:
                        if results is not None:
                            path = "parallel"
                            workers_used = workers
                        else:
                            notes.append(
                                "process pool unavailable; fell back to the in-process batch"
                            )
                elif mode is ExecutionMode.PARALLEL:
                    notes.append(
                        "request not pool-eligible (needs >1 query and no candidate "
                        "restriction); used the in-process batch"
                    )
            if results is None:
                prune = policy.prune or mode is ExecutionMode.PRUNED
                try:
                    with get_tracer().span(
                        "engine.scan", attributes={"prune": bool(prune)}
                    ) as stage:
                        batch = self.engine.serial_batch(
                            query_list, measure_name, k=request.k, candidates=candidates, prune=prune
                        )
                        scan_stats = self.engine.last_batch_stats
                        if stage.recording and scan_stats is not None:
                            stage.set_attributes(scan_stats.as_dict())
                except Exception as error:
                    # Real configuration errors (unknown measure, bad k)
                    # re-raise identically from the sequential tier
                    # below; only acceleration-layer faults degrade.
                    degraded = True
                    if degradation_reason is None:
                        degradation_reason = (
                            f"accelerated batch failed ({type(error).__name__}: {error})"
                        )
                    notes.append(
                        "accelerated batch faulted; degraded to the sequential exact path"
                    )
                else:
                    results = batch
                    instance = self.engine._accelerated_measure(measure_name)
                    if prune and supports_pruned_top_k(instance):
                        path = "pruned"
                        frontier = find_frontier_bound(instance, self.context)
                        if frontier is not None:
                            notes.append(
                                f"frontier pruning certified by bound {frontier.name!r}"
                            )
                    else:
                        path = "cached"
                        if mode is ExecutionMode.PRUNED:
                            # An explicit prune request on a measure no
                            # certified bound covers degrades, visibly:
                            # the scan that ran is the exact serial one.
                            path = "serial"
                            degraded = True
                            if degradation_reason is None:
                                degradation_reason = "no-certified-bound"
                    stats = self.engine.last_batch_stats
                    if stats is not None:
                        prune_stats = stats.as_dict()
        if results is None:
            with get_tracer().span(
                "engine.sequential", attributes={"queries": len(query_list)}
            ):
                results = [
                    self.engine.search(query, measure_name, k=request.k, candidates=candidates)
                    for query in query_list
                ]
            path = "sequential"

        epilogue_degraded, epilogue_reason = self._resilience_epilogue(notes)
        degraded = degraded or epilogue_degraded
        if degradation_reason is None:
            degradation_reason = epilogue_reason
        diagnostics = ExecutionDiagnostics(
            path=path,
            requested_mode=mode.value,
            seconds=time.perf_counter() - started,
            workers=workers_used,
            prune=prune_stats,
            # Cache counters are attached on every path (including the
            # sequential reference scan, which does not consult them but
            # whose diagnostics should still show the caches' state).
            caches=self.context.cache_stats(),
            index_candidates=index_candidates,
            cache_warm_hits=self.context.warm_hits_total() - warm_hits_before,
            degraded=degraded,
            degradation_reason=degradation_reason,
            retry_attempts=max(0, self._retry_total() - retry_before),
            notes=tuple(notes),
        )
        return ResultSet(
            kind="search",
            queries=tuple(_query_result(result) for result in results),
            diagnostics=diagnostics,
        )

    def pairwise(self, request: "PairwiseRequest | Mapping[str, Any] | str") -> ResultSet:
        """Score every unordered pair; see :class:`PairwiseRequest`."""
        request = _coerce(request, PairwiseRequest)
        with get_tracer().span(
            "service.pairwise", attributes={"measure": request.measure.name}
        ) as span:
            return self._observe_operation(span, "pairwise", self._pairwise(request))

    def _pairwise(self, request: PairwiseRequest) -> ResultSet:
        started = time.perf_counter()
        pool = self._resolve(request.workflows)
        policy = request.policy
        self._ensure_policy_store(policy)
        warm_hits_before = self.context.warm_hits_total()
        retry_before = self._retry_total()
        mode = policy.mode
        measure_name = request.measure.name
        notes: list[str] = []
        path = "cached"
        workers_used: int | None = None
        similarities = None
        degraded = False
        degradation_reason: str | None = None

        # Same degradation ladder as search(): parallel → accelerated
        # scan → sequential exact scan, every rung bit-identical.
        if mode is not ExecutionMode.SEQUENTIAL:
            wants_pool = mode is ExecutionMode.PARALLEL or (
                mode is ExecutionMode.AUTO and policy.workers and policy.workers > 1
            )
            if wants_pool:
                if request.workflows is None:
                    workers = policy.workers or 2
                    try:
                        self._fire_fault("parallel")
                        with get_tracer().span(
                            "engine.parallel", attributes={"workers": workers}
                        ):
                            similarities = self.engine.parallel_pairwise_scores(
                                pool, measure_name, workers=workers, chunk_size=policy.chunk_size
                            )
                    except Exception as error:
                        degraded = True
                        degradation_reason = (
                            f"parallel tier failed ({type(error).__name__}: {error})"
                        )
                        notes.append(
                            "process pool faulted mid-run; "
                            "fell back to the in-process scan"
                        )
                        similarities = None
                    else:
                        if similarities is not None:
                            path = "parallel"
                            workers_used = workers
                        else:
                            notes.append(
                                "process pool unavailable; fell back to the in-process scan"
                            )
                elif mode is ExecutionMode.PARALLEL:
                    notes.append(
                        "pairwise pooling requires the whole repository; "
                        "used the in-process cached scan"
                    )
            if similarities is None:
                try:
                    with get_tracer().span(
                        "engine.scan", attributes={"workflows": len(pool)}
                    ):
                        similarities = self.engine.pairwise_similarity(
                            measure_name, workflows=pool, workers=None
                        )
                except Exception as error:
                    degraded = True
                    if degradation_reason is None:
                        degradation_reason = (
                            f"accelerated scan failed ({type(error).__name__}: {error})"
                        )
                    notes.append(
                        "accelerated scan faulted; degraded to the sequential exact path"
                    )
                    similarities = None
        if similarities is None:
            with get_tracer().span(
                "engine.sequential", attributes={"workflows": len(pool)}
            ):
                similarities = self.engine.pairwise_similarity(
                    measure_name, workflows=pool, accelerate=False
                )
            path = "sequential"

        epilogue_degraded, epilogue_reason = self._resilience_epilogue(notes)
        degraded = degraded or epilogue_degraded
        if degradation_reason is None:
            degradation_reason = epilogue_reason
        pairs = tuple(
            (first.identifier, second.identifier, similarities[(first.identifier, second.identifier)])
            for i, first in enumerate(pool)
            for second in pool[i + 1:]
        )
        diagnostics = ExecutionDiagnostics(
            path=path,
            requested_mode=mode.value,
            seconds=time.perf_counter() - started,
            workers=workers_used,
            caches=self.context.cache_stats(),
            cache_warm_hits=self.context.warm_hits_total() - warm_hits_before,
            degraded=degraded,
            degradation_reason=degradation_reason,
            retry_attempts=max(0, self._retry_total() - retry_before),
            notes=tuple(notes),
        )
        return ResultSet(kind="pairwise", pairs=pairs, diagnostics=diagnostics)

    def cluster(self, request: "ClusterRequest | Mapping[str, Any] | str") -> ResultSet:
        """Cluster the similarity graph; see :class:`ClusterRequest`."""
        request = _coerce(request, ClusterRequest)
        with get_tracer().span(
            "service.cluster",
            attributes={
                "measure": request.measure.name,
                "linkage": request.linkage,
            },
        ) as span:
            return self._observe_operation(span, "cluster", self._cluster(request))

    def _cluster(self, request: ClusterRequest) -> ResultSet:
        started = time.perf_counter()
        from ..repository.clustering import agglomerative_clusters, threshold_clusters

        pairwise = self.pairwise(
            PairwiseRequest(
                measure=request.measure,
                workflows=request.workflows,
                policy=request.policy,
            )
        )
        pool = self._resolve(request.workflows)
        similarities = pairwise.pair_scores()
        # With similarities precomputed the clustering helpers never
        # invoke the measure; resolve it only to satisfy their signature.
        instance = self.engine.framework.measure(request.measure.name)
        if request.linkage == "average":
            clusters = agglomerative_clusters(
                pool, instance, threshold=request.threshold, similarities=similarities
            )
        else:
            clusters = threshold_clusters(
                pool, instance, threshold=request.threshold, similarities=similarities
            )
        diagnostics = pairwise.diagnostics
        assert diagnostics is not None
        diagnostics.seconds = time.perf_counter() - started
        return ResultSet(
            kind="cluster",
            clusters=tuple(tuple(sorted(cluster)) for cluster in clusters),
            diagnostics=diagnostics,
        )

    # -- helpers -------------------------------------------------------------

    def _observe_operation(self, span, operation: str, result: ResultSet) -> ResultSet:
        """Stamp the operation span + registry counters onto a result.

        Purely observational: mutates only diagnostics (excluded from
        result equality) and process-wide instruments, never the payload.
        """
        diagnostics = result.diagnostics
        if diagnostics is None:
            return result
        if span.recording:
            diagnostics.trace_id = span.trace_id
            span.set_attributes(
                {"path": diagnostics.path, "degraded": diagnostics.degraded}
            )
            if diagnostics.degradation_reason:
                span.set_attribute("reason", diagnostics.degradation_reason)
        self._operations_counter.inc(operation=operation, path=diagnostics.path)
        if diagnostics.degraded:
            self._degraded_counter.inc(operation=operation)
        return result

    def _resolve(self, identifiers: Sequence[str] | None) -> list[Workflow]:
        if identifiers is None:
            return self.repository.workflows()
        return [self.repository.get(identifier) for identifier in identifiers]

    def _ensure_policy_store(self, policy) -> None:
        """Attach the policy's ``cache_dir`` when the service has none yet."""
        if policy.cache_dir is not None and self.store is None:
            self.attach_cache_dir(policy.cache_dir, retry=policy.retry_policy())

    # -- resilience ----------------------------------------------------------

    @property
    def fault_injector(self):
        """Optional :class:`~repro.store.FaultInjector` for chaos tests.

        Fired at the ``"indexed"`` and ``"parallel"`` tier seams of this
        service and propagated to the attached store (which fires it at
        ``"commit"`` and ``"load"``).  ``None`` in production.
        """
        return self._fault_injector

    @fault_injector.setter
    def fault_injector(self, injector) -> None:
        self._fault_injector = injector
        if self.store is not None:
            self.store.fault_injector = injector

    def _fire_fault(self, event: str) -> None:
        if self._fault_injector is not None:
            self._fault_injector.fire(event, service=self)

    def _retry_total(self) -> int:
        """Lifetime lock-retry count across every store this service had."""
        total = self._retired_retries
        if self.store is not None:
            total += self.store.retry_count
        return total

    def _resilience_epilogue(self, notes: list[str]) -> tuple[bool, str | None]:
        """Fold store faults + pending recoveries into this request.

        Runs after the results are computed (they are exact regardless —
        a faulting store only means colder caches).  A store fault
        parked by the acceleration context is consumed here: transient
        lock contention keeps the store; anything else quarantines and
        rebuilds it.  Open-/persist-time recovery events that have not
        yet been reported are drained into this request's notes.
        Returns ``(degraded, first_reason)``.
        """
        degraded = False
        reason: str | None = None
        fault = self.context.store_fault
        if fault is not None:
            self.context.store_fault = None
            if is_locked_error(fault) and self.store is not None:
                # Contention is transient: keep the store (the context
                # detached it when the load faulted) and re-attach.
                self.context.attach_store(self.store)
                event = (
                    f"store read contended ({fault}); "
                    "request served from in-process caches"
                )
                self.degradation_log.append({"event": event, "fault": repr(fault)})
            else:
                event = self._recover_store(fault)
            degraded = True
            reason = event
            notes.append(event)
        for event in self._pending_degradations:
            degraded = True
            if reason is None:
                reason = event
            notes.append(event)
        self._pending_degradations.clear()
        return degraded, reason

    def _recover_store(self, fault: BaseException) -> str:
        """Quarantine the attached store; rebuild it from the live corpus.

        Never raises — when even the rebuild fails the service simply
        continues storeless (exact results, cold caches).  Returns the
        human-readable degradation event, also kept in
        :attr:`degradation_log`.
        """
        if self.store is None:
            return f"store fault ({fault}); no store attached"
        store = self.store
        directory, path, retry = store.directory, store.path, store.retry
        self._retired_retries += store.retry_count
        self.context.detach_store()
        # Warm-loaded entries only exist on the quarantined file's disk;
        # re-mark them as new so the rebuilt store receives everything
        # on the next persist().
        self.context.reset_warm_markers()
        store.close()
        self.store = None
        self._store_trusted = False
        try:
            quarantine_dir = quarantine_store(path, reason=str(fault))
        except OSError as error:
            event = (
                f"store fault ({fault}); quarantine failed ({error}); "
                "continuing without a store"
            )
            self.degradation_log.append({"event": event, "fault": repr(fault)})
            return event
        try:
            rebuilt = WorkflowStore.rebuild(
                directory, self.repository, index=self.index, retry=retry
            )
        except Exception as error:
            event = (
                f"store fault ({fault}); damaged files quarantined to "
                f"{quarantine_dir}; rebuild failed ({error}); "
                "continuing without a store"
            )
            self.degradation_log.append(
                {"event": event, "fault": repr(fault), "quarantine": str(quarantine_dir)}
            )
            return event
        rebuilt.fault_injector = self._fault_injector
        self.store = rebuilt
        self._store_trusted = True
        self.context.attach_store(rebuilt)
        event = (
            f"store fault ({fault}); damaged files quarantined to "
            f"{quarantine_dir}; store rebuilt from the live repository"
        )
        self.degradation_log.append(
            {"event": event, "fault": repr(fault), "quarantine": str(quarantine_dir)}
        )
        return event

    def _sql_admission_ready(self, admission: AdmissionBound) -> bool:
        """Whether a trusted store can answer this admission in SQL."""
        if self.store is None or not self._store_trusted:
            return False
        try:
            return SqlAdmissionPlanner(self.store).available(admission)
        except Exception:
            # An unreadable store is simply not a tier; the in-memory
            # ladder (and the resilience epilogue, once a real read
            # faults) handles the rest.
            return False

    def _sql_admitted_sets(
        self, query_list: Sequence[Workflow], admission: AdmissionBound
    ) -> "list[set[str]] | None":
        """Admitted id sets resolved in-database; ``None`` on decline."""
        planner = SqlAdmissionPlanner(self.store)
        admitted_sets: list[set[str]] = []
        for query in query_list:
            plan = admission.sql_plan(query)
            if plan is None:
                return None
            admitted_sets.append(planner.admitted(plan))
        return admitted_sets

    def _memory_admitted_sets(
        self, query_list: Sequence[Workflow], admission: AdmissionBound
    ) -> "list[set[str]] | None":
        """Admitted id sets from the in-memory structures; ``None`` on
        decline (one uncertifiable query sends the whole batch down the
        pruned path instead)."""
        admitted_sets: list[set[str]] = []
        if admission.kind == "annotation":
            for query in query_list:
                tokens = self.index.workflow_tokens(admission.field, query)
                admitted_sets.append(self.index.candidates(admission.field, tokens))
            return admitted_sets
        for query in query_list:
            certified = admission.query_chars(query)
            if certified is None:
                return None
            chars, carve_out = certified
            admitted_sets.append(
                self.label_bags.admitted(chars, include_empty_label=carve_out)
            )
        return admitted_sets

    def _indexed_search(
        self,
        query_list: Sequence[Workflow],
        measure,
        admission: AdmissionBound,
        k: int,
        admitted_sets: "list[set[str]]",
        *,
        prune: bool = True,
    ) -> "tuple[list[SearchResultList], int, PruneStats]":
        """Top-``k`` search via certified admission + frontier pruning.

        Admission is score-safe by the :class:`AdmissionBound` contract:
        every workflow outside the admitted postings union has a true
        score of exactly ``0.0`` — token-set intersection for the
        annotation kind, label character-bag overlap for the label kind.
        ``admitted_sets`` (one set per query, resolved by the SQL or the
        in-memory tier — both compute the identical set) names the
        candidates that may score above zero.  The admitted subpool
        (kept in global pool order, so tie-breaks survive) runs through
        :func:`bounded_top_k` — exact scores from the measure itself,
        frontier-pruned when a pruning
        :class:`~repro.perf.bounds.CertifiedBound` certifies the measure
        — and the result merges with the first ``k`` non-admitted zeros
        in pool order, of which only the first ``k`` can ever rank.
        Sorting by ``(-score, global position)`` then reproduces
        :meth:`SimilarityFramework.rank`'s ordering — scores, ranks and
        tie-breaks — bit for bit, while only the admitted candidates pay
        for a comparison.
        """
        pool = self.repository.workflows()
        position_of = {
            workflow.identifier: position for position, workflow in enumerate(pool)
        }
        stats = PruneStats()
        results: list[SearchResultList] = []
        total_admitted = 0
        for query, admitted in zip(query_list, admitted_sets):
            admitted.discard(query.identifier)
            total_admitted += len(admitted)
            subpool = [
                candidate for candidate in pool if candidate.identifier in admitted
            ]
            top = bounded_top_k(
                query,
                subpool,
                measure,
                self.context,
                k=k,
                exclude_query=False,
                prune=prune,
                stats=stats,
            )
            merged = [
                (entry.similarity, position_of[entry.workflow.identifier], entry.workflow)
                for entry in top
            ]
            zero_budget = k
            for position, candidate in enumerate(pool):
                if zero_budget == 0:
                    break
                if (
                    candidate.identifier == query.identifier
                    or candidate.identifier in admitted
                ):
                    continue
                merged.append((0.0, position, candidate))
                zero_budget -= 1
            # Same ordering as SimilarityFramework.rank: descending
            # score, then pool position.
            merged.sort(key=lambda item: (-item[0], item[1]))
            ranked = [
                RankedWorkflow(workflow=workflow, similarity=similarity, rank=rank)
                for rank, (similarity, _position, workflow) in enumerate(
                    merged[:k], start=1
                )
            ]
            results.append(
                self.engine._result_list(query.identifier, measure.name, ranked)
            )
        return results, total_admitted, stats


def _query_result(result: SearchResultList) -> QueryResult:
    return QueryResult(
        query_id=result.query_id,
        measure=result.measure,
        hits=tuple(
            SearchHit(workflow_id=hit.workflow_id, similarity=hit.similarity, rank=hit.rank)
            for hit in result.results
        ),
    )


def _coerce(request, request_class):
    if isinstance(request, request_class):
        return request
    if isinstance(request, str):
        return request_class.from_json(request)
    if isinstance(request, Mapping):
        return request_class.from_dict(request)
    raise TypeError(
        f"expected {request_class.__name__}, a mapping, or a JSON string; "
        f"got {type(request).__name__}"
    )
