"""The :class:`SimilarityService` facade — the package's public surface.

One service is opened over one :class:`WorkflowRepository` and answers
declarative requests (:class:`SearchRequest`, :class:`PairwiseRequest`,
:class:`ClusterRequest`) with unified :class:`ResultSet` responses.  The
caller never chooses between ``search`` and ``search_batch`` or manages
an :class:`~repro.perf.engine.AccelerationContext`: the service owns the
context (bound to the repository's profile store) and routes every
request to the fastest path that is bit-identical to the sequential
reference scan — frontier-pruned top-k for ``MS`` measures, cached full
scans otherwise, a process pool when the policy grants workers.  The
:class:`~repro.api.results.ExecutionDiagnostics` attached to every
response records which path actually ran.

Long-lived services keep their repositories *mutable*:
:meth:`SimilarityService.add_workflows` and
:meth:`SimilarityService.remove_workflows` update the corpus in place
with precise invalidation — only the profiles and fingerprint memos of
the affected workflows are dropped, while the value-keyed module-pair
score caches (the expensive part) survive and keep serving the remaining
corpus.  Results after any mutation sequence are bit-identical to a
fresh service over the same corpus; the API tests pin this.

State also outlives the process: a service opened with a ``cache_dir``
attaches a :class:`~repro.store.WorkflowStore`, warm-starting its
module-pair score caches (and, when the persisted snapshot matches the
corpus, the inverted annotation index) from disk.
:meth:`SimilarityService.persist` writes the snapshot, scores and index
back; ``SimilarityService.open(cache_dir=...)`` with no corpus source
reopens the persisted snapshot directly and returns bit-identical
results to the service that wrote it — the warm-start tests pin this.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from ..core.framework import RankedWorkflow, SimilarityFramework
from ..core.registry import all_configuration_names
from ..perf.engine import AccelerationContext, supports_pruned_top_k
from ..repository.repository import RepositoryStatistics, WorkflowRepository
from ..repository.search import SearchResultList, SimilaritySearchEngine
from ..store import InvertedAnnotationIndex, WorkflowStore, corpus_fingerprint
from ..workflow.model import Workflow
from .requests import (
    ClusterRequest,
    ExecutionMode,
    PairwiseRequest,
    SearchRequest,
)
from .results import ExecutionDiagnostics, QueryResult, ResultSet, SearchHit

__all__ = ["SimilarityService"]


class SimilarityService:
    """Declarative similarity operations over one workflow repository."""

    def __init__(
        self,
        repository: WorkflowRepository,
        *,
        framework: SimilarityFramework | None = None,
        cache_dir: "str | Path | None" = None,
    ) -> None:
        self.repository = repository
        #: The execution layer.  Internal: requests should go through the
        #: service methods, which add routing, diagnostics and precise
        #: invalidation on top.
        self.engine = SimilaritySearchEngine(repository, framework)
        #: Summary of the most recent :meth:`remove_workflows` call.
        self.last_invalidation: dict[str, int] | None = None
        #: The attached persistent store, if any (see :meth:`attach_cache_dir`).
        self.store: WorkflowStore | None = None
        #: The inverted annotation index, once built or loaded.
        self.index: InvertedAnnotationIndex | None = None
        self._store_trusted = False
        if cache_dir is not None:
            self.attach_cache_dir(cache_dir)

    @classmethod
    def open(
        cls,
        source: "WorkflowRepository | str | Path | None" = None,
        *,
        framework: SimilarityFramework | None = None,
        cache_dir: "str | Path | None" = None,
    ) -> "SimilarityService":
        """Open a service over a repository, a corpus file, or a cache dir.

        With only ``source``, behaves as before.  With only
        ``cache_dir``, the corpus is the persisted snapshot of that
        directory's :class:`~repro.store.WorkflowStore` — the warm-start
        path, bit-identical to the service that called
        :meth:`persist`.  With both, the corpus comes from ``source``
        and the store is attached for its caches (the persisted index is
        only trusted when the snapshot fingerprint matches the corpus).
        """
        if source is None:
            if cache_dir is None:
                raise ValueError("open() needs a corpus source, a cache_dir, or both")
            store = WorkflowStore(cache_dir)
            repository = store.load_repository()
            if repository is None:
                raise ValueError(
                    f"no persisted repository snapshot in {str(cache_dir)!r}; "
                    "pass a corpus source or run persist()/`repro index build` first"
                )
            service = cls(repository, framework=framework)
            service._adopt_store(store, trusted=True)
            return service
        repository = (
            source
            if isinstance(source, WorkflowRepository)
            else WorkflowRepository.load(source)
        )
        return cls(repository, framework=framework, cache_dir=cache_dir)

    # -- introspection -------------------------------------------------------

    @property
    def context(self) -> AccelerationContext:
        """The acceleration context whose lifecycle this service owns."""
        return self.engine.context

    def measures(self) -> list[str]:
        """All measure names of the paper's configuration sweep."""
        return all_configuration_names()

    def statistics(self) -> RepositoryStatistics:
        return self.repository.statistics()

    def warm(self) -> int:
        """Precompute every workflow profile; returns the module count."""
        return self.repository.profile_store.warm(self.repository.workflows())

    def __len__(self) -> int:
        return len(self.repository)

    def __contains__(self, identifier: str) -> bool:
        return identifier in self.repository

    # -- persistence ---------------------------------------------------------

    def attach_cache_dir(self, cache_dir: "str | Path") -> None:
        """Attach a persistent warm-start store to this service.

        The store's persisted pair scores are loaded into the score
        caches immediately (always safe: entries are keyed by attribute
        values, not corpus membership).  The persisted inverted index is
        loaded only when the store's snapshot fingerprint matches the
        live corpus — a preselection over a *different* corpus would not
        be score-safe.
        """
        store = WorkflowStore(cache_dir)
        trusted = store.fingerprint() == corpus_fingerprint(self.repository)
        self._adopt_store(store, trusted=trusted)

    @property
    def store_trusted(self) -> bool:
        """Whether the attached store's snapshot matches the live corpus.

        Only a trusted store receives incremental write-through on
        corpus mutation and may serve its persisted index; an untrusted
        one still contributes its (value-keyed, always-safe) pair
        scores.  :meth:`persist` establishes trust by rewriting the
        snapshot.
        """
        return self.store is not None and self._store_trusted

    def _adopt_store(self, store: WorkflowStore, *, trusted: bool) -> None:
        if self.store is not None and self.store is not store:
            # Entries warm-loaded from the old store are not on the new
            # store's disk; re-mark them as new before switching.
            self.context.reset_warm_markers()
            self.store.close()
        self.store = store
        self._store_trusted = trusted
        self.context.attach_store(store)
        if trusted and self.index is None:
            self.index = store.load_index()

    def build_index(self) -> dict[str, int]:
        """(Re)build the inverted annotation index over the live corpus.

        Once built, ``AUTO`` requests for annotation measures route
        through the index's score-safe candidate preselection, and the
        index mutates in step with ``add_workflows``/``remove_workflows``.
        Returns the index size counters.
        """
        self.index = InvertedAnnotationIndex.build(self.repository.workflows())
        return self.index.stats()

    def persist(self) -> dict[str, int]:
        """Write the corpus snapshot, pair scores and index to the store.

        Requires an attached ``cache_dir``.  A service later opened via
        ``SimilarityService.open(cache_dir=...)`` warm-starts from this
        state and returns bit-identical results.  Returns counters of
        what was written.
        """
        if self.store is None:
            raise ValueError(
                "no cache_dir attached; open the service with cache_dir=... "
                "or call attach_cache_dir() first"
            )
        # Skip the snapshot rewrite when it is already current (the
        # common repeated-persist case would otherwise delete and
        # reinsert every row per call).
        if self.store.fingerprint() != corpus_fingerprint(self.repository):
            self.store.save_repository(self.repository)
        pair_scores = self.context.persist_scores(self.store)
        # Without a live index any previously persisted postings would
        # describe the *old* snapshot — drop them rather than let a
        # future warm start preselect over a stale index.
        postings = (
            self.store.save_index(self.index)
            if self.index is not None
            else self.store.clear_postings()
        )
        self._store_trusted = True
        return {
            "workflows": len(self.repository),
            "pair_scores": pair_scores,
            "postings": postings,
        }

    def close(self) -> None:
        """Release the persistent store's connection (if attached).

        The acceleration context stops consulting the store too —
        later requests simply run with whatever is already cached.
        """
        if self.store is not None:
            self.context.detach_store()
            self.store.close()
            self.store = None
            self._store_trusted = False

    # -- incremental repository mutation -------------------------------------

    def add_workflows(
        self, workflows: Iterable[Workflow], *, replace: bool = False
    ) -> int:
        """Add workflows to the live corpus; returns the number added.

        New workflows are profiled lazily on first use — no cache rebuild
        happens.  With ``replace=True`` an existing workflow of the same
        identifier is removed first (with precise invalidation), so a
        *changed* workflow object can never be served stale derived data.
        A *trusted* attached store (see :attr:`store_trusted`) and a
        built index follow the mutation row by row — snapshot and
        postings stay in sync while value-keyed pair scores are
        untouched.  An untrusted store is never written through: its
        snapshot describes some other corpus, and upserting rows into it
        would persist a corpus that never existed.
        """
        added = 0
        write_through = self.store_trusted
        for workflow in workflows:
            if replace and workflow.identifier in self.repository:
                self.remove_workflows([workflow.identifier])
            self.repository.add(workflow)
            if self.index is not None:
                self.index.add_workflow(workflow)
            if write_through:
                self.store.add_workflow(workflow)
            added += 1
        return added

    def remove_workflows(self, identifiers: Iterable[str]) -> list[str]:
        """Remove workflows and precisely invalidate their derived state.

        Drops the workflow/module profiles (including profiles of
        preprocessed projections) and the per-profile fingerprint memos;
        the value-keyed pair-score caches are kept, so subsequent
        requests stay warm.  A *trusted* attached store and a built
        index drop the same rows (see :meth:`add_workflows` on why an
        untrusted store is left alone).

        Identifiers not present in the repository are silently ignored —
        removal is idempotent, so replayed or queued removal requests
        cannot fail halfway.  Returns the identifiers *actually removed*
        in request order (an empty list when none matched); the
        invalidation counters of the removal are kept on
        :attr:`last_invalidation`.
        """
        requested = dict.fromkeys(str(identifier) for identifier in identifiers)
        removed = [identifier for identifier in requested if identifier in self.repository]
        write_through = self.store_trusted
        for identifier in removed:
            self.repository.remove(identifier)
            if self.index is not None:
                self.index.remove_workflow(identifier)
            if write_through:
                self.store.remove_workflow(identifier)
        summary = self.context.invalidate_workflows(removed)
        summary["requested"] = len(requested)
        self.last_invalidation = summary
        return removed

    # -- request execution ---------------------------------------------------

    def search(self, request: "SearchRequest | Mapping[str, Any] | str") -> ResultSet:
        """Execute a top-``k`` search request; see :class:`SearchRequest`."""
        request = _coerce(request, SearchRequest)
        started = time.perf_counter()
        query_list = self._resolve(request.queries)
        candidates = (
            self._resolve(request.candidates) if request.candidates is not None else None
        )
        policy = request.policy
        self._ensure_policy_store(policy)
        warm_hits_before = self.context.warm_hits_total()
        mode = policy.mode
        measure_name = request.measure.name
        notes: list[str] = []
        results: list[SearchResultList] | None = None
        path = "sequential"
        workers_used: int | None = None
        prune_stats: dict[str, int] | None = None
        index_candidates: int | None = None

        if mode is ExecutionMode.SEQUENTIAL:
            results = [
                self.engine.search(query, measure_name, k=request.k, candidates=candidates)
                for query in query_list
            ]
        else:
            index_field = (
                InvertedAnnotationIndex.measure_field(measure_name)
                if self.index is not None
                else None
            )
            if (
                mode is ExecutionMode.AUTO
                and policy.preselect
                and index_field is not None
                and candidates is None
            ):
                results, index_candidates = self._indexed_search(
                    query_list, measure_name, index_field, request.k
                )
                path = "indexed"
            wants_pool = results is None and (
                mode is ExecutionMode.PARALLEL
                or (mode is ExecutionMode.AUTO and policy.workers and policy.workers > 1)
            )
            if wants_pool:
                if candidates is None and len(query_list) > 1:
                    workers = policy.workers or 2
                    results = self.engine.parallel_batch(
                        query_list,
                        measure_name,
                        k=request.k,
                        prune=policy.prune,
                        workers=workers,
                        chunk_size=policy.chunk_size,
                    )
                    if results is not None:
                        path = "parallel"
                        workers_used = workers
                    else:
                        notes.append(
                            "process pool unavailable; fell back to the in-process batch"
                        )
                elif mode is ExecutionMode.PARALLEL:
                    notes.append(
                        "request not pool-eligible (needs >1 query and no candidate "
                        "restriction); used the in-process batch"
                    )
            if results is None:
                prune = policy.prune or mode is ExecutionMode.PRUNED
                results = self.engine.serial_batch(
                    query_list, measure_name, k=request.k, candidates=candidates, prune=prune
                )
                instance = self.engine._accelerated_measure(measure_name)
                if prune and supports_pruned_top_k(instance):
                    path = "pruned"
                else:
                    path = "cached"
                    if mode is ExecutionMode.PRUNED:
                        notes.append(
                            f"measure {instance.name!r} does not support frontier "
                            "pruning; used the cached full scan"
                        )
                stats = self.engine.last_batch_stats
                if stats is not None:
                    prune_stats = stats.as_dict()

        diagnostics = ExecutionDiagnostics(
            path=path,
            requested_mode=mode.value,
            seconds=time.perf_counter() - started,
            workers=workers_used,
            prune=prune_stats,
            # Cache counters are attached on every path (including the
            # sequential reference scan, which does not consult them but
            # whose diagnostics should still show the caches' state).
            caches=self.context.cache_stats(),
            index_candidates=index_candidates,
            cache_warm_hits=self.context.warm_hits_total() - warm_hits_before,
            notes=tuple(notes),
        )
        return ResultSet(
            kind="search",
            queries=tuple(_query_result(result) for result in results),
            diagnostics=diagnostics,
        )

    def pairwise(self, request: "PairwiseRequest | Mapping[str, Any] | str") -> ResultSet:
        """Score every unordered pair; see :class:`PairwiseRequest`."""
        request = _coerce(request, PairwiseRequest)
        started = time.perf_counter()
        pool = self._resolve(request.workflows)
        policy = request.policy
        self._ensure_policy_store(policy)
        warm_hits_before = self.context.warm_hits_total()
        mode = policy.mode
        measure_name = request.measure.name
        notes: list[str] = []
        path = "cached"
        workers_used: int | None = None

        if mode is ExecutionMode.SEQUENTIAL:
            similarities = self.engine.pairwise_similarity(
                measure_name, workflows=pool, accelerate=False
            )
            path = "sequential"
        else:
            similarities = None
            wants_pool = mode is ExecutionMode.PARALLEL or (
                mode is ExecutionMode.AUTO and policy.workers and policy.workers > 1
            )
            if wants_pool:
                if request.workflows is None:
                    workers = policy.workers or 2
                    similarities = self.engine.parallel_pairwise_scores(
                        pool, measure_name, workers=workers, chunk_size=policy.chunk_size
                    )
                    if similarities is not None:
                        path = "parallel"
                        workers_used = workers
                    else:
                        notes.append(
                            "process pool unavailable; fell back to the in-process scan"
                        )
                elif mode is ExecutionMode.PARALLEL:
                    notes.append(
                        "pairwise pooling requires the whole repository; "
                        "used the in-process cached scan"
                    )
            if similarities is None:
                similarities = self.engine.pairwise_similarity(
                    measure_name, workflows=pool, workers=None
                )

        pairs = tuple(
            (first.identifier, second.identifier, similarities[(first.identifier, second.identifier)])
            for i, first in enumerate(pool)
            for second in pool[i + 1:]
        )
        diagnostics = ExecutionDiagnostics(
            path=path,
            requested_mode=mode.value,
            seconds=time.perf_counter() - started,
            workers=workers_used,
            caches=self.context.cache_stats(),
            cache_warm_hits=self.context.warm_hits_total() - warm_hits_before,
            notes=tuple(notes),
        )
        return ResultSet(kind="pairwise", pairs=pairs, diagnostics=diagnostics)

    def cluster(self, request: "ClusterRequest | Mapping[str, Any] | str") -> ResultSet:
        """Cluster the similarity graph; see :class:`ClusterRequest`."""
        request = _coerce(request, ClusterRequest)
        started = time.perf_counter()
        from ..repository.clustering import agglomerative_clusters, threshold_clusters

        pairwise = self.pairwise(
            PairwiseRequest(
                measure=request.measure,
                workflows=request.workflows,
                policy=request.policy,
            )
        )
        pool = self._resolve(request.workflows)
        similarities = pairwise.pair_scores()
        # With similarities precomputed the clustering helpers never
        # invoke the measure; resolve it only to satisfy their signature.
        instance = self.engine.framework.measure(request.measure.name)
        if request.linkage == "average":
            clusters = agglomerative_clusters(
                pool, instance, threshold=request.threshold, similarities=similarities
            )
        else:
            clusters = threshold_clusters(
                pool, instance, threshold=request.threshold, similarities=similarities
            )
        diagnostics = pairwise.diagnostics
        assert diagnostics is not None
        diagnostics.seconds = time.perf_counter() - started
        return ResultSet(
            kind="cluster",
            clusters=tuple(tuple(sorted(cluster)) for cluster in clusters),
            diagnostics=diagnostics,
        )

    # -- helpers -------------------------------------------------------------

    def _resolve(self, identifiers: Sequence[str] | None) -> list[Workflow]:
        if identifiers is None:
            return self.repository.workflows()
        return [self.repository.get(identifier) for identifier in identifiers]

    def _ensure_policy_store(self, policy) -> None:
        """Attach the policy's ``cache_dir`` when the service has none yet."""
        if policy.cache_dir is not None and self.store is None:
            self.attach_cache_dir(policy.cache_dir)

    def _indexed_search(
        self,
        query_list: Sequence[Workflow],
        measure_name: str,
        field: str,
        k: int,
    ) -> tuple[list[SearchResultList], int]:
        """Top-``k`` annotation search via inverted-index preselection.

        Admission is score-safe: a bag-overlap similarity is positive
        exactly when the two token sets intersect, so every workflow
        outside the union of the query tokens' postings scores ``0.0``.
        Admitted candidates are scored by the measure itself (the same
        float operations as the reference scan); non-admitted workflows
        enter as zeros in pool order, of which only the first ``k`` can
        ever rank.  Sorting by ``(-score, position)`` then reproduces
        :meth:`SimilarityFramework.rank`'s ordering — scores, ranks and
        tie-breaks — bit for bit, while only the admitted candidates pay
        for a comparison.
        """
        measure = self.engine._accelerated_measure(measure_name)
        pool = self.repository.workflows()
        results: list[SearchResultList] = []
        total_admitted = 0
        for query in query_list:
            tokens = self.index.workflow_tokens(field, query)
            admitted = self.index.candidates(field, tokens)
            admitted.discard(query.identifier)
            total_admitted += len(admitted)
            scored: list[tuple[float, int, Workflow]] = []
            zero_budget = k
            for position, candidate in enumerate(pool):
                if candidate.identifier == query.identifier:
                    continue
                if candidate.identifier in admitted:
                    scored.append(
                        (measure.similarity(query, candidate), position, candidate)
                    )
                elif zero_budget > 0:
                    scored.append((0.0, position, candidate))
                    zero_budget -= 1
            # Same ordering as SimilarityFramework.rank: descending
            # score, then pool position.
            scored.sort(key=lambda item: (-item[0], item[1]))
            ranked = [
                RankedWorkflow(workflow=workflow, similarity=similarity, rank=rank)
                for rank, (similarity, _position, workflow) in enumerate(
                    scored[:k], start=1
                )
            ]
            results.append(
                self.engine._result_list(query.identifier, measure.name, ranked)
            )
        return results, total_admitted


def _query_result(result: SearchResultList) -> QueryResult:
    return QueryResult(
        query_id=result.query_id,
        measure=result.measure,
        hits=tuple(
            SearchHit(workflow_id=hit.workflow_id, similarity=hit.similarity, rank=hit.rank)
            for hit in result.results
        ),
    )


def _coerce(request, request_class):
    if isinstance(request, request_class):
        return request
    if isinstance(request, str):
        return request_class.from_json(request)
    if isinstance(request, Mapping):
        return request_class.from_dict(request)
    raise TypeError(
        f"expected {request_class.__name__}, a mapping, or a JSON string; "
        f"got {type(request).__name__}"
    )
