"""The :class:`SimilarityService` facade — the package's public surface.

One service is opened over one :class:`WorkflowRepository` and answers
declarative requests (:class:`SearchRequest`, :class:`PairwiseRequest`,
:class:`ClusterRequest`) with unified :class:`ResultSet` responses.  The
caller never chooses between ``search`` and ``search_batch`` or manages
an :class:`~repro.perf.engine.AccelerationContext`: the service owns the
context (bound to the repository's profile store) and routes every
request to the fastest path that is bit-identical to the sequential
reference scan — frontier-pruned top-k for ``MS`` measures, cached full
scans otherwise, a process pool when the policy grants workers.  The
:class:`~repro.api.results.ExecutionDiagnostics` attached to every
response records which path actually ran.

Long-lived services keep their repositories *mutable*:
:meth:`SimilarityService.add_workflows` and
:meth:`SimilarityService.remove_workflows` update the corpus in place
with precise invalidation — only the profiles and fingerprint memos of
the affected workflows are dropped, while the value-keyed module-pair
score caches (the expensive part) survive and keep serving the remaining
corpus.  Results after any mutation sequence are bit-identical to a
fresh service over the same corpus; the API tests pin this.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from ..core.framework import SimilarityFramework
from ..core.registry import all_configuration_names
from ..perf.engine import AccelerationContext, supports_pruned_top_k
from ..repository.repository import RepositoryStatistics, WorkflowRepository
from ..repository.search import SearchResultList, SimilaritySearchEngine
from ..workflow.model import Workflow
from .requests import (
    ClusterRequest,
    ExecutionMode,
    PairwiseRequest,
    SearchRequest,
)
from .results import ExecutionDiagnostics, QueryResult, ResultSet, SearchHit

__all__ = ["SimilarityService"]


class SimilarityService:
    """Declarative similarity operations over one workflow repository."""

    def __init__(
        self,
        repository: WorkflowRepository,
        *,
        framework: SimilarityFramework | None = None,
    ) -> None:
        self.repository = repository
        #: The execution layer.  Internal: requests should go through the
        #: service methods, which add routing, diagnostics and precise
        #: invalidation on top.
        self.engine = SimilaritySearchEngine(repository, framework)
        #: Summary of the most recent :meth:`remove_workflows` call.
        self.last_invalidation: dict[str, int] | None = None

    @classmethod
    def open(
        cls,
        source: "WorkflowRepository | str | Path",
        *,
        framework: SimilarityFramework | None = None,
    ) -> "SimilarityService":
        """Open a service over a repository object or a corpus file."""
        if isinstance(source, WorkflowRepository):
            return cls(source, framework=framework)
        return cls(WorkflowRepository.load(source), framework=framework)

    # -- introspection -------------------------------------------------------

    @property
    def context(self) -> AccelerationContext:
        """The acceleration context whose lifecycle this service owns."""
        return self.engine.context

    def measures(self) -> list[str]:
        """All measure names of the paper's configuration sweep."""
        return all_configuration_names()

    def statistics(self) -> RepositoryStatistics:
        return self.repository.statistics()

    def warm(self) -> int:
        """Precompute every workflow profile; returns the module count."""
        return self.repository.profile_store.warm(self.repository.workflows())

    def __len__(self) -> int:
        return len(self.repository)

    def __contains__(self, identifier: str) -> bool:
        return identifier in self.repository

    # -- incremental repository mutation -------------------------------------

    def add_workflows(
        self, workflows: Iterable[Workflow], *, replace: bool = False
    ) -> int:
        """Add workflows to the live corpus; returns the number added.

        New workflows are profiled lazily on first use — no cache rebuild
        happens.  With ``replace=True`` an existing workflow of the same
        identifier is removed first (with precise invalidation), so a
        *changed* workflow object can never be served stale derived data.
        """
        added = 0
        for workflow in workflows:
            if replace and workflow.identifier in self.repository:
                self.remove_workflows([workflow.identifier])
            self.repository.add(workflow)
            added += 1
        return added

    def remove_workflows(self, identifiers: Iterable[str]) -> dict[str, int]:
        """Remove workflows and precisely invalidate their derived state.

        Drops the workflow/module profiles (including profiles of
        preprocessed projections) and the per-profile fingerprint memos;
        the value-keyed pair-score caches are kept, so subsequent
        requests stay warm.  Raises ``KeyError`` before touching anything
        if any identifier is unknown.  Returns invalidation counters
        (also kept on :attr:`last_invalidation`).
        """
        # Dedupe while keeping order: a repeated identifier must not pass
        # the membership check and then fail (non-atomically) mid-loop.
        removal = list(dict.fromkeys(str(identifier) for identifier in identifiers))
        missing = [identifier for identifier in removal if identifier not in self.repository]
        if missing:
            raise KeyError(
                f"no workflow(s) {missing!r} in repository {self.repository.name!r}"
            )
        for identifier in removal:
            self.repository.remove(identifier)
        summary = self.context.invalidate_workflows(removal)
        self.last_invalidation = summary
        return summary

    # -- request execution ---------------------------------------------------

    def search(self, request: "SearchRequest | Mapping[str, Any] | str") -> ResultSet:
        """Execute a top-``k`` search request; see :class:`SearchRequest`."""
        request = _coerce(request, SearchRequest)
        started = time.perf_counter()
        query_list = self._resolve(request.queries)
        candidates = (
            self._resolve(request.candidates) if request.candidates is not None else None
        )
        policy = request.policy
        mode = policy.mode
        measure_name = request.measure.name
        notes: list[str] = []
        results: list[SearchResultList] | None = None
        path = "sequential"
        workers_used: int | None = None
        prune_stats: dict[str, int] | None = None

        if mode is ExecutionMode.SEQUENTIAL:
            results = [
                self.engine.search(query, measure_name, k=request.k, candidates=candidates)
                for query in query_list
            ]
        else:
            wants_pool = mode is ExecutionMode.PARALLEL or (
                mode is ExecutionMode.AUTO and policy.workers and policy.workers > 1
            )
            if wants_pool:
                if candidates is None and len(query_list) > 1:
                    workers = policy.workers or 2
                    results = self.engine.parallel_batch(
                        query_list,
                        measure_name,
                        k=request.k,
                        prune=policy.prune,
                        workers=workers,
                        chunk_size=policy.chunk_size,
                    )
                    if results is not None:
                        path = "parallel"
                        workers_used = workers
                    else:
                        notes.append(
                            "process pool unavailable; fell back to the in-process batch"
                        )
                elif mode is ExecutionMode.PARALLEL:
                    notes.append(
                        "request not pool-eligible (needs >1 query and no candidate "
                        "restriction); used the in-process batch"
                    )
            if results is None:
                prune = policy.prune or mode is ExecutionMode.PRUNED
                results = self.engine.serial_batch(
                    query_list, measure_name, k=request.k, candidates=candidates, prune=prune
                )
                instance = self.engine._accelerated_measure(measure_name)
                if prune and supports_pruned_top_k(instance):
                    path = "pruned"
                else:
                    path = "cached"
                    if mode is ExecutionMode.PRUNED:
                        notes.append(
                            f"measure {instance.name!r} does not support frontier "
                            "pruning; used the cached full scan"
                        )
                stats = self.engine.last_batch_stats
                if stats is not None:
                    prune_stats = stats.as_dict()

        diagnostics = ExecutionDiagnostics(
            path=path,
            requested_mode=mode.value,
            seconds=time.perf_counter() - started,
            workers=workers_used,
            prune=prune_stats,
            caches=self.context.cache_stats() if path != "sequential" else [],
            notes=tuple(notes),
        )
        return ResultSet(
            kind="search",
            queries=tuple(_query_result(result) for result in results),
            diagnostics=diagnostics,
        )

    def pairwise(self, request: "PairwiseRequest | Mapping[str, Any] | str") -> ResultSet:
        """Score every unordered pair; see :class:`PairwiseRequest`."""
        request = _coerce(request, PairwiseRequest)
        started = time.perf_counter()
        pool = self._resolve(request.workflows)
        policy = request.policy
        mode = policy.mode
        measure_name = request.measure.name
        notes: list[str] = []
        path = "cached"
        workers_used: int | None = None

        if mode is ExecutionMode.SEQUENTIAL:
            similarities = self.engine.pairwise_similarity(
                measure_name, workflows=pool, accelerate=False
            )
            path = "sequential"
        else:
            similarities = None
            wants_pool = mode is ExecutionMode.PARALLEL or (
                mode is ExecutionMode.AUTO and policy.workers and policy.workers > 1
            )
            if wants_pool:
                if request.workflows is None:
                    workers = policy.workers or 2
                    similarities = self.engine.parallel_pairwise_scores(
                        pool, measure_name, workers=workers, chunk_size=policy.chunk_size
                    )
                    if similarities is not None:
                        path = "parallel"
                        workers_used = workers
                    else:
                        notes.append(
                            "process pool unavailable; fell back to the in-process scan"
                        )
                elif mode is ExecutionMode.PARALLEL:
                    notes.append(
                        "pairwise pooling requires the whole repository; "
                        "used the in-process cached scan"
                    )
            if similarities is None:
                similarities = self.engine.pairwise_similarity(
                    measure_name, workflows=pool, workers=None
                )

        pairs = tuple(
            (first.identifier, second.identifier, similarities[(first.identifier, second.identifier)])
            for i, first in enumerate(pool)
            for second in pool[i + 1:]
        )
        diagnostics = ExecutionDiagnostics(
            path=path,
            requested_mode=mode.value,
            seconds=time.perf_counter() - started,
            workers=workers_used,
            caches=self.context.cache_stats() if path != "sequential" else [],
            notes=tuple(notes),
        )
        return ResultSet(kind="pairwise", pairs=pairs, diagnostics=diagnostics)

    def cluster(self, request: "ClusterRequest | Mapping[str, Any] | str") -> ResultSet:
        """Cluster the similarity graph; see :class:`ClusterRequest`."""
        request = _coerce(request, ClusterRequest)
        started = time.perf_counter()
        from ..repository.clustering import agglomerative_clusters, threshold_clusters

        pairwise = self.pairwise(
            PairwiseRequest(
                measure=request.measure,
                workflows=request.workflows,
                policy=request.policy,
            )
        )
        pool = self._resolve(request.workflows)
        similarities = pairwise.pair_scores()
        # With similarities precomputed the clustering helpers never
        # invoke the measure; resolve it only to satisfy their signature.
        instance = self.engine.framework.measure(request.measure.name)
        if request.linkage == "average":
            clusters = agglomerative_clusters(
                pool, instance, threshold=request.threshold, similarities=similarities
            )
        else:
            clusters = threshold_clusters(
                pool, instance, threshold=request.threshold, similarities=similarities
            )
        diagnostics = pairwise.diagnostics
        assert diagnostics is not None
        diagnostics.seconds = time.perf_counter() - started
        return ResultSet(
            kind="cluster",
            clusters=tuple(tuple(sorted(cluster)) for cluster in clusters),
            diagnostics=diagnostics,
        )

    # -- helpers -------------------------------------------------------------

    def _resolve(self, identifiers: Sequence[str] | None) -> list[Workflow]:
        if identifiers is None:
            return self.repository.workflows()
        return [self.repository.get(identifier) for identifier in identifiers]


def _query_result(result: SearchResultList) -> QueryResult:
    return QueryResult(
        query_id=result.query_id,
        measure=result.measure,
        hits=tuple(
            SearchHit(workflow_id=hit.workflow_id, similarity=hit.similarity, rank=hit.rank)
            for hit in result.results
        ),
    )


def _coerce(request, request_class):
    if isinstance(request, request_class):
        return request
    if isinstance(request, str):
        return request_class.from_json(request)
    if isinstance(request, Mapping):
        return request_class.from_dict(request)
    raise TypeError(
        f"expected {request_class.__name__}, a mapping, or a JSON string; "
        f"got {type(request).__name__}"
    )
