"""Public service facade: declarative requests, policies, unified results.

This package is the advertised way to use the library::

    from repro.api import SimilarityService, SearchRequest, ExecutionPolicy

    service = SimilarityService.open("corpus.json")
    result = service.search(SearchRequest(measure="MS_ip_te_pll", k=10))
    for query_result in result:
        print(query_result.query_id, query_result.identifiers())
    print(result.diagnostics.path, result.diagnostics.prune)

Requests are plain, JSON-serializable values; execution strategy is a
policy (``auto`` by default — the service routes to the fastest
bit-identical path itself); responses are :class:`ResultSet` objects
carrying scores, ranks, timing and prune/cache diagnostics.  Services
are long-lived and their repositories mutable in place via
``add_workflows``/``remove_workflows`` with precise cache invalidation.
"""

from .requests import (
    ClusterRequest,
    ExecutionMode,
    ExecutionPolicy,
    MeasureBuilder,
    MeasureSpec,
    PairwiseRequest,
    SearchRequest,
    request_from_dict,
)
from .results import ExecutionDiagnostics, QueryResult, ResultSet, SearchHit
from .service import SimilarityService

__all__ = [
    "SimilarityService",
    "SearchRequest",
    "PairwiseRequest",
    "ClusterRequest",
    "MeasureSpec",
    "MeasureBuilder",
    "ExecutionMode",
    "ExecutionPolicy",
    "ResultSet",
    "QueryResult",
    "SearchHit",
    "ExecutionDiagnostics",
    "request_from_dict",
]
