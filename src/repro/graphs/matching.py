"""Weighted bipartite matching algorithms used for module mapping.

Section 2.1.2 of the paper distinguishes three ways of mapping the
modules of two workflows onto each other once pairwise module
similarities are known:

* **greedy** selection of the highest-similarity pairs (Silva et al.),
* **maximum-weight matching** (``mw``) computing the assignment of
  maximum overall weight (Bergmann & Gil), and
* **maximum-weight non-crossing matching** (``mwnc``) which respects a
  given order of the elements, used when workflows are decomposed into
  paths.

This module provides all three as pure functions over a dense similarity
matrix (a list of rows).  A pure-Python Hungarian (Kuhn-Munkres)
implementation is included so the library has no hard dependency on
SciPy; when SciPy is importable its ``linear_sum_assignment`` is used as
a faster backend for larger matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

try:  # SciPy is an optional accelerator, not a requirement.
    from scipy.optimize import linear_sum_assignment as _scipy_assignment
except ImportError:  # pragma: no cover - exercised only without SciPy
    _scipy_assignment = None

__all__ = [
    "MatchedPair",
    "greedy_matching",
    "maximum_weight_matching",
    "maximum_weight_noncrossing_matching",
    "hungarian_maximum_weight",
    "matching_weight",
]

#: Weights smaller than this are treated as "no useful similarity" and never
#: matched; this mirrors the intuition that mapping two entirely dissimilar
#: modules onto each other adds no information about workflow similarity.
_EPSILON = 1e-12


@dataclass(frozen=True)
class MatchedPair:
    """A single matched pair of row/column indices with its weight."""

    row: int
    col: int
    weight: float


def _validate_matrix(weights: Sequence[Sequence[float]]) -> tuple[int, int]:
    n_rows = len(weights)
    if n_rows == 0:
        return 0, 0
    n_cols = len(weights[0])
    for row in weights:
        if len(row) != n_cols:
            raise ValueError("weight matrix rows must all have the same length")
    return n_rows, n_cols


def matching_weight(pairs: Sequence[MatchedPair]) -> float:
    """Return the total weight of a matching."""
    return sum(pair.weight for pair in pairs)


def greedy_matching(
    weights: Sequence[Sequence[float]], *, minimum_weight: float = _EPSILON
) -> list[MatchedPair]:
    """Greedily match rows to columns in descending order of weight.

    Each row and each column is used at most once.  Pairs with weight
    below ``minimum_weight`` are never selected.
    """
    n_rows, n_cols = _validate_matrix(weights)
    candidates = [
        MatchedPair(i, j, weights[i][j])
        for i in range(n_rows)
        for j in range(n_cols)
        if weights[i][j] >= minimum_weight
    ]
    candidates.sort(key=lambda pair: (-pair.weight, pair.row, pair.col))
    used_rows: set[int] = set()
    used_cols: set[int] = set()
    result: list[MatchedPair] = []
    for pair in candidates:
        if pair.row in used_rows or pair.col in used_cols:
            continue
        used_rows.add(pair.row)
        used_cols.add(pair.col)
        result.append(pair)
    return result


def hungarian_maximum_weight(
    weights: Sequence[Sequence[float]],
) -> list[tuple[int, int]]:
    """Solve the maximum-weight assignment problem in pure Python.

    Implements the O(n^3) Hungarian algorithm (Jonker-style potentials)
    on a square matrix obtained by padding the input with zero-weight
    dummy rows/columns.  Returns the complete assignment including dummy
    pairs; callers filter by weight.
    """
    n_rows, n_cols = _validate_matrix(weights)
    if n_rows == 0 or n_cols == 0:
        return []
    size = max(n_rows, n_cols)
    # Convert to a minimisation problem on a padded square cost matrix.
    max_weight = max(max(row) for row in weights) if n_rows else 0.0
    cost = [[max_weight] * size for _ in range(size)]
    for i in range(n_rows):
        for j in range(n_cols):
            cost[i][j] = max_weight - weights[i][j]

    INF = float("inf")
    # Potentials and assignment arrays are 1-indexed (classic formulation).
    u = [0.0] * (size + 1)
    v = [0.0] * (size + 1)
    p = [0] * (size + 1)  # p[j] = row assigned to column j
    way = [0] * (size + 1)
    for i in range(1, size + 1):
        p[0] = i
        j0 = 0
        minv = [INF] * (size + 1)
        used = [False] * (size + 1)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = INF
            j1 = 0
            for j in range(1, size + 1):
                if used[j]:
                    continue
                current = cost[i0 - 1][j - 1] - u[i0] - v[j]
                if current < minv[j]:
                    minv[j] = current
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(size + 1):
                if used[j]:
                    u[p[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        while True:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1
            if j0 == 0:
                break
    assignment = []
    for j in range(1, size + 1):
        row = p[j] - 1
        col = j - 1
        if row < n_rows and col < n_cols:
            assignment.append((row, col))
    return assignment


def maximum_weight_matching(
    weights: Sequence[Sequence[float]],
    *,
    minimum_weight: float = _EPSILON,
    use_scipy: bool | None = None,
) -> list[MatchedPair]:
    """Return the maximum-weight bipartite matching (``mw`` in the paper).

    Parameters
    ----------
    weights:
        Dense matrix of pairwise similarities (rows × columns).
    minimum_weight:
        Pairs whose weight falls below this threshold are dropped from
        the result (they contribute nothing to workflow similarity).
    use_scipy:
        Force (``True``)/forbid (``False``) the SciPy backend.  By
        default SciPy is used when available and the matrix has more
        than a handful of rows.
    """
    n_rows, n_cols = _validate_matrix(weights)
    if n_rows == 0 or n_cols == 0:
        return []
    if use_scipy is None:
        use_scipy = _scipy_assignment is not None and max(n_rows, n_cols) > 6
    if use_scipy and _scipy_assignment is not None:
        import numpy as np

        matrix = np.asarray(weights, dtype=float)
        rows, cols = _scipy_assignment(matrix, maximize=True)
        pairs = list(zip(rows.tolist(), cols.tolist()))
    else:
        pairs = hungarian_maximum_weight(weights)
    return [
        MatchedPair(i, j, weights[i][j])
        for i, j in pairs
        if weights[i][j] >= minimum_weight
    ]


def maximum_weight_noncrossing_matching(
    weights: Sequence[Sequence[float]], *, minimum_weight: float = _EPSILON
) -> list[MatchedPair]:
    """Return the maximum-weight non-crossing matching (``mwnc``).

    Given two ordered sequences (the rows and columns of ``weights``), a
    non-crossing matching never contains two pairs ``(i, j)`` and
    ``(i', j')`` with ``i < i'`` but ``j > j'``.  This respects the order
    of modules along a path (Malucelli et al. [27]).  Solved by dynamic
    programming in ``O(n * m)``.
    """
    n_rows, n_cols = _validate_matrix(weights)
    if n_rows == 0 or n_cols == 0:
        return []
    # best[i][j] = max weight using the first i rows and first j columns.
    best = [[0.0] * (n_cols + 1) for _ in range(n_rows + 1)]
    for i in range(1, n_rows + 1):
        for j in range(1, n_cols + 1):
            take = best[i - 1][j - 1] + max(weights[i - 1][j - 1], 0.0)
            best[i][j] = max(best[i - 1][j], best[i][j - 1], take)
    # Backtrack to recover the matched pairs.
    pairs: list[MatchedPair] = []
    i, j = n_rows, n_cols
    while i > 0 and j > 0:
        if best[i][j] == best[i - 1][j]:
            i -= 1
        elif best[i][j] == best[i][j - 1]:
            j -= 1
        else:
            weight = weights[i - 1][j - 1]
            if weight >= minimum_weight:
                pairs.append(MatchedPair(i - 1, j - 1, weight))
            i -= 1
            j -= 1
    pairs.reverse()
    return pairs
