"""Light-weight directed-graph helpers shared by the workflow substrate.

The workflow model (``repro.workflow``) stores its structure as adjacency
mappings over opaque node identifiers.  The helpers here implement the
DAG algorithms the similarity framework needs: cycle detection,
topological sorting, source/sink discovery, reachability, transitive
closure and transitive reduction.  They deliberately work on plain
``dict[node, set[node]]`` adjacency structures so they can also be used
directly in tests and benchmarks without constructing full workflows.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Mapping

__all__ = [
    "GraphCycleError",
    "successors_view",
    "predecessors_from_successors",
    "sources",
    "sinks",
    "has_cycle",
    "topological_sort",
    "reachable_from",
    "transitive_closure",
    "transitive_reduction",
]

Node = Hashable
Adjacency = Mapping[Node, Iterable[Node]]


class GraphCycleError(ValueError):
    """Raised when an operation requiring a DAG encounters a cycle."""


def successors_view(adjacency: Adjacency) -> dict[Node, set[Node]]:
    """Return a normalised ``dict[node, set[node]]`` copy of ``adjacency``.

    Nodes that appear only as targets of edges are added with an empty
    successor set so every node is a key.
    """
    graph: dict[Node, set[Node]] = {node: set(targets) for node, targets in adjacency.items()}
    for targets in list(graph.values()):
        for target in targets:
            graph.setdefault(target, set())
    return graph


def predecessors_from_successors(adjacency: Adjacency) -> dict[Node, set[Node]]:
    """Return the reversed adjacency (predecessor sets) of a graph."""
    graph = successors_view(adjacency)
    predecessors: dict[Node, set[Node]] = {node: set() for node in graph}
    for node, targets in graph.items():
        for target in targets:
            predecessors[target].add(node)
    return predecessors


def sources(adjacency: Adjacency) -> list[Node]:
    """Return nodes without inbound edges (the DAG's sources)."""
    predecessors = predecessors_from_successors(adjacency)
    return [node for node, preds in predecessors.items() if not preds]


def sinks(adjacency: Adjacency) -> list[Node]:
    """Return nodes without outbound edges (the DAG's sinks)."""
    graph = successors_view(adjacency)
    return [node for node, targets in graph.items() if not targets]


def has_cycle(adjacency: Adjacency) -> bool:
    """Return ``True`` if the directed graph contains a cycle."""
    try:
        topological_sort(adjacency)
    except GraphCycleError:
        return True
    return False


def topological_sort(adjacency: Adjacency) -> list[Node]:
    """Return a topological order of the graph's nodes (Kahn's algorithm).

    Raises
    ------
    GraphCycleError
        If the graph contains a cycle.
    """
    graph = successors_view(adjacency)
    in_degree: dict[Node, int] = {node: 0 for node in graph}
    for targets in graph.values():
        for target in targets:
            in_degree[target] += 1
    queue = deque(sorted((node for node, deg in in_degree.items() if deg == 0), key=repr))
    order: list[Node] = []
    while queue:
        node = queue.popleft()
        order.append(node)
        for target in sorted(graph[node], key=repr):
            in_degree[target] -= 1
            if in_degree[target] == 0:
                queue.append(target)
    if len(order) != len(graph):
        raise GraphCycleError("graph contains at least one cycle")
    return order


def reachable_from(adjacency: Adjacency, start: Node) -> set[Node]:
    """Return all nodes reachable from ``start`` (excluding ``start`` itself
    unless it lies on a cycle through itself)."""
    graph = successors_view(adjacency)
    seen: set[Node] = set()
    stack = list(graph.get(start, ()))
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(graph.get(node, ()))
    return seen


def transitive_closure(adjacency: Adjacency) -> dict[Node, set[Node]]:
    """Return the transitive closure as a successor mapping."""
    graph = successors_view(adjacency)
    return {node: reachable_from(graph, node) for node in graph}


def transitive_reduction(adjacency: Adjacency) -> dict[Node, set[Node]]:
    """Return the transitive reduction of a DAG.

    The reduction keeps an edge ``(u, v)`` only if there is no longer
    path from ``u`` to ``v``.  Used by the importance projection
    (Section 2.1.5) to connect important modules with a single edge when
    they were connected through removed, unimportant modules.

    Raises
    ------
    GraphCycleError
        If the graph is not acyclic.
    """
    graph = successors_view(adjacency)
    topological_sort(graph)  # validates acyclicity
    closure = transitive_closure(graph)
    reduced: dict[Node, set[Node]] = {node: set() for node in graph}
    for node, targets in graph.items():
        for target in targets:
            # Edge is redundant if any *other* successor reaches ``target``.
            redundant = any(
                target in closure[other] for other in targets if other != target
            )
            if not redundant:
                reduced[node].add(target)
    return reduced
