"""Path enumeration for the Path-Sets topological comparison.

Section 2.1.3 of the paper decomposes each workflow DAG into its set of
source-to-sink paths: starting from each node without inbound datalinks
all possible paths ending in a node without outbound datalinks are
computed.  This module implements that decomposition plus helpers to
bound the (potentially exponential) number of enumerated paths.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping

from .dag import GraphCycleError, sinks, sources, successors_view, topological_sort

__all__ = [
    "PathLimitExceeded",
    "enumerate_paths",
    "all_source_sink_paths",
    "count_source_sink_paths",
    "longest_path_length",
]

Node = Hashable
Adjacency = Mapping[Node, Iterable[Node]]


class PathLimitExceeded(RuntimeError):
    """Raised when a DAG has more source-to-sink paths than the caller allows."""


def enumerate_paths(
    adjacency: Adjacency, start: Node, *, max_paths: int | None = None
) -> Iterator[tuple[Node, ...]]:
    """Yield all paths from ``start`` to any sink node as node tuples.

    Paths are produced by depth-first traversal; successor order is made
    deterministic by sorting on ``repr``.
    """
    graph = successors_view(adjacency)
    produced = 0
    stack: list[tuple[Node, tuple[Node, ...]]] = [(start, (start,))]
    while stack:
        node, path = stack.pop()
        targets = sorted(graph.get(node, ()), key=repr, reverse=True)
        if not targets:
            produced += 1
            if max_paths is not None and produced > max_paths:
                raise PathLimitExceeded(
                    f"more than {max_paths} source-to-sink paths"
                )
            yield path
            continue
        for target in targets:
            stack.append((target, path + (target,)))


def all_source_sink_paths(
    adjacency: Adjacency, *, max_paths: int | None = 10_000
) -> list[tuple[Node, ...]]:
    """Return every source-to-sink path of a DAG.

    A single isolated node constitutes a path of length one (it is both
    a source and a sink), matching the behaviour required for workflows
    consisting of a single module.

    Parameters
    ----------
    max_paths:
        Safety bound on the total number of paths; ``None`` disables the
        check.  Dense synthetic DAGs can otherwise blow up exponentially.

    Raises
    ------
    GraphCycleError
        If the graph is cyclic (there would be no sinks reachable).
    PathLimitExceeded
        If the number of paths exceeds ``max_paths``.
    """
    graph = successors_view(adjacency)
    topological_sort(graph)  # validates acyclicity
    paths: list[tuple[Node, ...]] = []
    for source in sorted(sources(graph), key=repr):
        for path in enumerate_paths(graph, source, max_paths=max_paths):
            paths.append(path)
            if max_paths is not None and len(paths) > max_paths:
                raise PathLimitExceeded(f"more than {max_paths} source-to-sink paths")
    return paths


def count_source_sink_paths(adjacency: Adjacency) -> int:
    """Count source-to-sink paths without materialising them.

    Uses dynamic programming over a topological order, so it runs in
    linear time in the size of the DAG even when the number of paths is
    exponential.
    """
    graph = successors_view(adjacency)
    order = topological_sort(graph)
    if not order:
        return 0
    sink_set = set(sinks(graph))
    counts: dict[Node, int] = {}
    for node in reversed(order):
        if node in sink_set:
            counts[node] = 1
        else:
            counts[node] = sum(counts[target] for target in graph[node])
    source_nodes = sources(graph)
    return sum(counts[node] for node in source_nodes)


def longest_path_length(adjacency: Adjacency) -> int:
    """Return the number of nodes on the longest source-to-sink path."""
    graph = successors_view(adjacency)
    order = topological_sort(graph)
    if not order:
        return 0
    length: dict[Node, int] = {}
    for node in reversed(order):
        targets = graph[node]
        length[node] = 1 + max((length[t] for t in targets), default=0)
    return max(length.values())
