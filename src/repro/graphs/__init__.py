"""Graph algorithms: DAG helpers, bipartite matching, path enumeration, GED."""

from .dag import (
    GraphCycleError,
    has_cycle,
    predecessors_from_successors,
    reachable_from,
    sinks,
    sources,
    successors_view,
    topological_sort,
    transitive_closure,
    transitive_reduction,
)
from .ged import (
    EditCosts,
    GEDResult,
    GraphEditDistance,
    LabeledGraph,
    graph_edit_distance,
    maximum_edit_cost,
)
from .matching import (
    MatchedPair,
    greedy_matching,
    hungarian_maximum_weight,
    matching_weight,
    maximum_weight_matching,
    maximum_weight_noncrossing_matching,
)
from .paths import (
    PathLimitExceeded,
    all_source_sink_paths,
    count_source_sink_paths,
    enumerate_paths,
    longest_path_length,
)

__all__ = [
    "GraphCycleError",
    "has_cycle",
    "predecessors_from_successors",
    "reachable_from",
    "sinks",
    "sources",
    "successors_view",
    "topological_sort",
    "transitive_closure",
    "transitive_reduction",
    "EditCosts",
    "GEDResult",
    "GraphEditDistance",
    "LabeledGraph",
    "graph_edit_distance",
    "maximum_edit_cost",
    "MatchedPair",
    "greedy_matching",
    "hungarian_maximum_weight",
    "matching_weight",
    "maximum_weight_matching",
    "maximum_weight_noncrossing_matching",
    "PathLimitExceeded",
    "all_source_sink_paths",
    "count_source_sink_paths",
    "enumerate_paths",
    "longest_path_length",
]
