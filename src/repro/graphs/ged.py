"""Graph edit distance for labelled DAGs.

The paper's ``GE`` topological comparison (Section 2.1.3) computes the
graph edit distance between two workflow DAGs using the SUBDUE package
with uniform costs of 1 for every edit operation.  SUBDUE identifies
nodes via labels; the framework sets node labels so that they reflect
the module mapping derived from maximum-weight matching of the modules.

This module is the substrate replacement for SUBDUE: a pure-Python graph
edit distance over :class:`LabeledGraph` objects with

* an exact A* search for small graphs,
* a bipartite (assignment-based) approximation in the style of
  Riesen & Bunke for larger graphs, and
* a wall-clock timeout per pair, mirroring the paper's 5-minute cap on a
  single SUBDUE invocation.

Both strategies use the same uniform cost model, and the result records
whether the returned cost is exact.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping

from .matching import maximum_weight_matching

__all__ = [
    "LabeledGraph",
    "GEDResult",
    "EditCosts",
    "GraphEditDistance",
    "graph_edit_distance",
    "maximum_edit_cost",
]

Node = Hashable


@dataclass(frozen=True)
class EditCosts:
    """Costs of the six elementary edit operations.

    The paper keeps SUBDUE's default of uniform costs of 1; different
    weightings "did not produce significantly different results", but the
    knobs are exposed for ablation experiments.
    """

    node_insertion: float = 1.0
    node_deletion: float = 1.0
    node_substitution: float = 1.0
    edge_insertion: float = 1.0
    edge_deletion: float = 1.0
    edge_substitution: float = 0.0

    def substitution_cost(self, label_a: str, label_b: str) -> float:
        """Cost of substituting a node: free when the labels agree."""
        return 0.0 if label_a == label_b else self.node_substitution


@dataclass
class LabeledGraph:
    """A directed graph with string labels on its nodes.

    This is the minimal structure the GED algorithm needs; the workflow
    layer converts :class:`repro.workflow.Workflow` objects into it,
    assigning labels according to the module mapping.
    """

    labels: dict[Node, str] = field(default_factory=dict)
    edges: set[tuple[Node, Node]] = field(default_factory=set)

    def __post_init__(self) -> None:
        for source, target in self.edges:
            if source not in self.labels or target not in self.labels:
                raise ValueError(f"edge ({source!r}, {target!r}) references unknown node")

    @classmethod
    def from_edges(
        cls,
        nodes: Mapping[Node, str],
        edges: Iterable[tuple[Node, Node]],
    ) -> "LabeledGraph":
        return cls(labels=dict(nodes), edges=set(edges))

    @property
    def node_count(self) -> int:
        return len(self.labels)

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    def nodes(self) -> list[Node]:
        return sorted(self.labels, key=repr)

    def out_neighbors(self, node: Node) -> set[Node]:
        return {target for source, target in self.edges if source == node}

    def in_neighbors(self, node: Node) -> set[Node]:
        return {source for source, target in self.edges if target == node}

    def degree(self, node: Node) -> int:
        return sum(1 for edge in self.edges if node in edge)


@dataclass(frozen=True)
class GEDResult:
    """Result of a graph edit distance computation."""

    cost: float
    exact: bool
    timed_out: bool
    node_mapping: tuple[tuple[Node, Node | None], ...] = ()

    def __float__(self) -> float:  # pragma: no cover - trivial
        return self.cost


def maximum_edit_cost(
    graph_a: LabeledGraph, graph_b: LabeledGraph, costs: EditCosts | None = None
) -> float:
    """Upper bound on the edit cost used for normalisation.

    The paper normalises by ``max(|V1|, |V2|) + |E1| + |E2|`` for uniform
    costs of 1: in the worst case every node of the bigger node set is
    substituted or deleted and every edge of both graphs is inserted or
    deleted.  For non-uniform costs the same structure is priced with the
    configured cost values.
    """
    costs = costs or EditCosts()
    node_term = max(graph_a.node_count, graph_b.node_count) * max(
        costs.node_substitution, costs.node_deletion, costs.node_insertion
    )
    edge_term = (
        graph_a.edge_count * costs.edge_deletion
        + graph_b.edge_count * costs.edge_insertion
    )
    return node_term + edge_term


def _edge_cost_for_mapping(
    graph_a: LabeledGraph,
    graph_b: LabeledGraph,
    mapping: Mapping[Node, Node | None],
    costs: EditCosts,
) -> float:
    """Edge edit cost induced by a complete node mapping.

    Edges of ``graph_a`` whose image is not an edge of ``graph_b`` are
    deleted; edges of ``graph_b`` not covered by an image are inserted.
    """
    cost = 0.0
    mapped_edges: set[tuple[Node, Node]] = set()
    for source, target in graph_a.edges:
        image_source = mapping.get(source)
        image_target = mapping.get(target)
        if image_source is None or image_target is None:
            cost += costs.edge_deletion
            continue
        if (image_source, image_target) in graph_b.edges:
            mapped_edges.add((image_source, image_target))
            cost += costs.edge_substitution
        else:
            cost += costs.edge_deletion + costs.edge_insertion
    cost += costs.edge_insertion * len(graph_b.edges - mapped_edges)
    return cost


def _total_cost_for_mapping(
    graph_a: LabeledGraph,
    graph_b: LabeledGraph,
    mapping: Mapping[Node, Node | None],
    costs: EditCosts,
) -> float:
    """Full edit cost (nodes + edges) induced by a node mapping."""
    cost = 0.0
    used_targets = set()
    for node in graph_a.labels:
        image = mapping.get(node)
        if image is None:
            cost += costs.node_deletion
        else:
            used_targets.add(image)
            cost += costs.substitution_cost(graph_a.labels[node], graph_b.labels[image])
    cost += costs.node_insertion * (graph_b.node_count - len(used_targets))
    cost += _edge_cost_for_mapping(graph_a, graph_b, mapping, costs)
    return cost


class GraphEditDistance:
    """Graph edit distance computer with exact and approximate modes.

    Parameters
    ----------
    costs:
        The edit cost model (uniform 1s by default, as in the paper).
    exact_node_limit:
        Pairs where both graphs have at most this many nodes are solved
        exactly by exhaustive search over injective node mappings with
        branch-and-bound pruning.
    timeout:
        Wall-clock budget in seconds for a single pair.  When exceeded,
        the best bound found so far is returned with ``timed_out=True``
        (the evaluation layer may then discard the pair, as the paper
        discards pairs SUBDUE cannot finish in 5 minutes).
    """

    def __init__(
        self,
        costs: EditCosts | None = None,
        *,
        exact_node_limit: int = 8,
        timeout: float | None = None,
    ) -> None:
        self.costs = costs or EditCosts()
        self.exact_node_limit = exact_node_limit
        self.timeout = timeout

    # -- public API ---------------------------------------------------

    def distance(self, graph_a: LabeledGraph, graph_b: LabeledGraph) -> GEDResult:
        """Compute the edit distance between two labelled graphs."""
        if graph_a.node_count == 0 and graph_b.node_count == 0:
            return GEDResult(cost=0.0, exact=True, timed_out=False)
        if graph_a.node_count == 0:
            cost = (
                graph_b.node_count * self.costs.node_insertion
                + graph_b.edge_count * self.costs.edge_insertion
            )
            return GEDResult(cost=cost, exact=True, timed_out=False)
        if graph_b.node_count == 0:
            cost = (
                graph_a.node_count * self.costs.node_deletion
                + graph_a.edge_count * self.costs.edge_deletion
            )
            return GEDResult(cost=cost, exact=True, timed_out=False)
        small = (
            graph_a.node_count <= self.exact_node_limit
            and graph_b.node_count <= self.exact_node_limit
        )
        deadline = None if self.timeout is None else time.monotonic() + self.timeout
        if small:
            return self._exact(graph_a, graph_b, deadline)
        return self._approximate(graph_a, graph_b, deadline)

    # -- exact search ---------------------------------------------------

    def _exact(
        self, graph_a: LabeledGraph, graph_b: LabeledGraph, deadline: float | None
    ) -> GEDResult:
        nodes_a = graph_a.nodes()
        nodes_b = graph_b.nodes()
        # Start from the approximation to obtain a good upper bound for pruning.
        approx = self._approximate(graph_a, graph_b, deadline)
        best_cost = approx.cost
        best_mapping = dict(approx.node_mapping)
        timed_out = False

        targets = nodes_b + [None] * len(nodes_a)

        def search(index: int, mapping: dict[Node, Node | None], used: set[Node]) -> None:
            nonlocal best_cost, best_mapping, timed_out
            if deadline is not None and time.monotonic() > deadline:
                timed_out = True
                return
            if index == len(nodes_a):
                cost = _total_cost_for_mapping(graph_a, graph_b, mapping, self.costs)
                if cost < best_cost:
                    best_cost = cost
                    best_mapping = dict(mapping)
                return
            # Lower bound: node operations committed so far.
            committed = 0.0
            for node, image in mapping.items():
                if image is None:
                    committed += self.costs.node_deletion
                else:
                    committed += self.costs.substitution_cost(
                        graph_a.labels[node], graph_b.labels[image]
                    )
            if committed >= best_cost:
                return
            node = nodes_a[index]
            seen_none = False
            for target in targets:
                if timed_out:
                    return
                if target is None:
                    if seen_none:
                        continue
                    seen_none = True
                elif target in used:
                    continue
                mapping[node] = target
                if target is not None:
                    used.add(target)
                search(index + 1, mapping, used)
                if target is not None:
                    used.discard(target)
                del mapping[node]

        search(0, {}, set())
        exact = not timed_out
        return GEDResult(
            cost=best_cost,
            exact=exact,
            timed_out=timed_out,
            node_mapping=tuple(sorted(best_mapping.items(), key=lambda kv: repr(kv[0]))),
        )

    # -- assignment-based approximation ---------------------------------

    def _approximate(
        self, graph_a: LabeledGraph, graph_b: LabeledGraph, deadline: float | None
    ) -> GEDResult:
        nodes_a = graph_a.nodes()
        nodes_b = graph_b.nodes()
        timed_out = False
        # Similarity (negated local cost) matrix for maximum-weight matching.
        # Local cost of mapping u -> v: label substitution + degree mismatch.
        max_local = (
            self.costs.node_substitution
            + self.costs.edge_deletion
            + self.costs.edge_insertion
        ) * 2 + 1.0
        weights: list[list[float]] = []
        for u in nodes_a:
            row = []
            degree_u_out = len(graph_a.out_neighbors(u))
            degree_u_in = len(graph_a.in_neighbors(u))
            for v in nodes_b:
                if deadline is not None and time.monotonic() > deadline:
                    timed_out = True
                label_cost = self.costs.substitution_cost(
                    graph_a.labels[u], graph_b.labels[v]
                )
                degree_v_out = len(graph_b.out_neighbors(v))
                degree_v_in = len(graph_b.in_neighbors(v))
                edge_cost = (
                    abs(degree_u_out - degree_v_out) + abs(degree_u_in - degree_v_in)
                ) * 0.5 * min(self.costs.edge_deletion, self.costs.edge_insertion)
                # Deleting u + inserting v is the alternative; only map when cheaper.
                alternative = self.costs.node_deletion + self.costs.node_insertion
                local_cost = label_cost + edge_cost
                row.append(max_local - local_cost if local_cost < alternative + edge_cost else 0.0)
            weights.append(row)
        pairs = maximum_weight_matching(weights) if nodes_a and nodes_b else []
        mapping: dict[Node, Node | None] = {node: None for node in nodes_a}
        for pair in pairs:
            mapping[nodes_a[pair.row]] = nodes_b[pair.col]
        cost = _total_cost_for_mapping(graph_a, graph_b, mapping, self.costs)
        return GEDResult(
            cost=cost,
            exact=False,
            timed_out=timed_out,
            node_mapping=tuple(sorted(mapping.items(), key=lambda kv: repr(kv[0]))),
        )


def graph_edit_distance(
    graph_a: LabeledGraph,
    graph_b: LabeledGraph,
    *,
    costs: EditCosts | None = None,
    exact_node_limit: int = 8,
    timeout: float | None = None,
) -> GEDResult:
    """Convenience wrapper around :class:`GraphEditDistance`."""
    computer = GraphEditDistance(
        costs, exact_node_limit=exact_node_limit, timeout=timeout
    )
    return computer.distance(graph_a, graph_b)
