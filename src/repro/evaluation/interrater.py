"""Inter-annotator agreement (Figure 4 of the paper).

Figure 4 compares every single expert's rankings against the BioConsert
consensus using the same ranking correctness and completeness measures
used for the algorithms.  This module computes those per-expert values
from a :class:`~repro.goldstandard.study.RankingExperimentData`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..goldstandard.study import RankingExperimentData
from .metrics import correctness_and_completeness, mean_and_std

__all__ = ["ExpertAgreement", "inter_annotator_agreement"]


@dataclass
class ExpertAgreement:
    """Agreement of one expert with the consensus rankings."""

    expert_id: str
    per_query_correctness: dict[str, float] = field(default_factory=dict)
    per_query_completeness: dict[str, float] = field(default_factory=dict)

    @property
    def mean_correctness(self) -> float:
        return mean_and_std(self.per_query_correctness.values())[0]

    @property
    def std_correctness(self) -> float:
        return mean_and_std(self.per_query_correctness.values())[1]

    @property
    def mean_completeness(self) -> float:
        return mean_and_std(self.per_query_completeness.values())[0]


def inter_annotator_agreement(data: RankingExperimentData) -> dict[str, ExpertAgreement]:
    """Per-expert ranking correctness/completeness against the consensus."""
    experts = sorted(
        {expert_id for rankings in data.expert_rankings.values() for expert_id in rankings}
    )
    agreements = {expert_id: ExpertAgreement(expert_id=expert_id) for expert_id in experts}
    for query_id, consensus in data.consensus.items():
        for expert_id, ranking in data.expert_rankings.get(query_id, {}).items():
            correctness, completeness = correctness_and_completeness(consensus, ranking)
            agreement = agreements[expert_id]
            agreement.per_query_correctness[query_id] = correctness
            agreement.per_query_completeness[query_id] = completeness
    return agreements
