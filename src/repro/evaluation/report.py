"""Plain-text result tables for the experiment harnesses.

The benchmarks regenerate the paper's figures as text tables; the
helpers here keep the formatting in one place so every benchmark prints
the same layout (measure name, mean, standard deviation, completeness,
or precision-at-k series).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .interrater import ExpertAgreement
from .ranking import RankingQuality
from .retrieval import PrecisionCurves

__all__ = [
    "format_ranking_table",
    "format_precision_table",
    "format_agreement_table",
    "format_simple_table",
]


def format_simple_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = ""
) -> str:
    """Render a fixed-width text table."""
    columns = len(headers)
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered_rows)) if rendered_rows else len(headers[i])
        for i in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for row in rendered_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(columns)))
    return "\n".join(lines)


def format_ranking_table(
    results: Mapping[str, RankingQuality], *, title: str = "Ranking correctness"
) -> str:
    """Table of mean correctness / stddev / completeness per measure."""
    rows = [
        (
            name,
            f"{quality.mean_correctness:.3f}",
            f"{quality.std_correctness:.3f}",
            f"{quality.mean_completeness:.3f}",
            quality.evaluated_queries,
            len(quality.skipped_queries),
        )
        for name, quality in results.items()
    ]
    rows.sort(key=lambda row: -float(row[1]))
    return format_simple_table(
        ("measure", "correctness", "stddev", "completeness", "queries", "skipped"),
        rows,
        title=title,
    )


def format_precision_table(
    results: Mapping[str, PrecisionCurves],
    *,
    threshold: str = "similar",
    ranks: Sequence[int] = (1, 3, 5, 10),
    title: str | None = None,
) -> str:
    """Table of precision at selected ranks for one relevance threshold."""
    headers = ["measure"] + [f"P@{k}" for k in ranks]
    rows = []
    for name, curves in results.items():
        rows.append([name] + [f"{curves.at(threshold, k):.3f}" for k in ranks])
    rows.sort(key=lambda row: -float(row[-1]))
    return format_simple_table(
        headers, rows, title=title or f"Retrieval precision (threshold: {threshold})"
    )


def format_agreement_table(
    agreements: Mapping[str, ExpertAgreement], *, title: str = "Inter-annotator agreement"
) -> str:
    """Table of per-expert agreement with the consensus (Figure 4)."""
    rows = [
        (
            expert_id,
            f"{agreement.mean_correctness:.3f}",
            f"{agreement.std_correctness:.3f}",
            f"{agreement.mean_completeness:.3f}",
        )
        for expert_id, agreement in sorted(agreements.items())
    ]
    return format_simple_table(
        ("expert", "correctness", "stddev", "completeness"), rows, title=title
    )
