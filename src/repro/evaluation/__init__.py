"""Evaluation metrics and experiment harnesses (ranking, retrieval, agreement)."""

from .interrater import ExpertAgreement, inter_annotator_agreement
from .metrics import (
    RELEVANCE_THRESHOLDS,
    average_precision,
    correctness_and_completeness,
    mean_and_std,
    precision_at_k,
    precision_curve,
    ranking_completeness,
    ranking_correctness,
)
from .ranking import RankingEvaluation, RankingQuality
from .report import (
    format_agreement_table,
    format_precision_table,
    format_ranking_table,
    format_simple_table,
)
from .retrieval import PrecisionCurves, RetrievalEvaluation, RetrievalQuality
from .significance import PairedTTestResult, paired_t_test

__all__ = [
    "ExpertAgreement",
    "inter_annotator_agreement",
    "RELEVANCE_THRESHOLDS",
    "average_precision",
    "correctness_and_completeness",
    "mean_and_std",
    "precision_at_k",
    "precision_curve",
    "ranking_completeness",
    "ranking_correctness",
    "RankingEvaluation",
    "RankingQuality",
    "format_agreement_table",
    "format_precision_table",
    "format_ranking_table",
    "format_simple_table",
    "PrecisionCurves",
    "RetrievalEvaluation",
    "RetrievalQuality",
    "PairedTTestResult",
    "paired_t_test",
]
