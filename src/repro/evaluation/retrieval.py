"""Experiment 2 harness: retrieval precision over the whole repository.

Each evaluated algorithm retrieves the top-10 most similar workflows for
every retrieval query from the complete repository; precision at k
(1 ≤ k ≤ 10) against the median expert relevance judgements is computed
for the three relevance thresholds *related*, *similar* and *very
similar*.  Figures 10 and 11 of the paper are means of these curves over
the retrieval queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.base import WorkflowSimilarityMeasure
from ..goldstandard.ratings import LikertRating
from ..goldstandard.study import GoldStandardStudy, RetrievalExperimentData
from ..repository.search import SimilaritySearchEngine
from .metrics import RELEVANCE_THRESHOLDS, mean_and_std, precision_curve

__all__ = ["PrecisionCurves", "RetrievalQuality", "RetrievalEvaluation"]


@dataclass
class PrecisionCurves:
    """Mean precision-at-k curves of one measure at the three thresholds."""

    measure: str
    max_k: int
    curves: dict[str, list[float]] = field(default_factory=dict)
    std: dict[str, list[float]] = field(default_factory=dict)

    def at(self, threshold: str, k: int) -> float:
        """Mean precision at rank ``k`` for a named threshold."""
        return self.curves[threshold][k - 1]


@dataclass
class RetrievalQuality:
    """Per-query precision curves of one measure."""

    measure: str
    max_k: int
    per_query: dict[str, dict[str, list[float]]] = field(default_factory=dict)

    def mean_curves(self) -> PrecisionCurves:
        summary = PrecisionCurves(measure=self.measure, max_k=self.max_k)
        for threshold in RELEVANCE_THRESHOLDS:
            per_rank_means: list[float] = []
            per_rank_std: list[float] = []
            for rank_index in range(self.max_k):
                values = [
                    curves[threshold][rank_index] for curves in self.per_query.values()
                ]
                mean_value, std_value = mean_and_std(values)
                per_rank_means.append(mean_value)
                per_rank_std.append(std_value)
            summary.curves[threshold] = per_rank_means
            summary.std[threshold] = per_rank_std
        return summary


class RetrievalEvaluation:
    """Evaluates retrieval precision of similarity measures."""

    def __init__(
        self,
        engine: SimilaritySearchEngine,
        data: RetrievalExperimentData,
        *,
        study: GoldStandardStudy | None = None,
        max_k: int = 10,
    ) -> None:
        self.engine = engine
        self.data = data
        #: When given, the study is asked to rate result workflows that were
        #: not part of the original merged candidate lists (the paper's
        #: "experts were asked to complete the ratings").
        self.study = study
        self.max_k = max_k

    def evaluate_measure(self, measure: str | WorkflowSimilarityMeasure) -> RetrievalQuality:
        """Precision curves of one measure over all retrieval queries."""
        instance = self.engine.framework.measure(measure)
        quality = RetrievalQuality(measure=instance.name, max_k=self.max_k)
        for query_id in self.data.query_ids:
            query = self.engine.repository.get(query_id)
            if not instance.is_applicable_to(query):
                continue
            results = self.engine.search(query_id, instance, k=self.max_k)
            result_ids = results.identifiers()
            if self.study is not None:
                self.study.extend_relevance(self.data, query_id, result_ids)
            ratings = self.data.relevance.get(query_id, {})
            quality.per_query[query_id] = {
                name: precision_curve(
                    result_ids, ratings, max_k=self.max_k, threshold=threshold
                )
                for name, threshold in RELEVANCE_THRESHOLDS.items()
            }
        return quality

    def evaluate_measures(
        self, measures: Sequence[str | WorkflowSimilarityMeasure]
    ) -> dict[str, PrecisionCurves]:
        """Mean precision curves for several measures, keyed by name."""
        summaries: dict[str, PrecisionCurves] = {}
        for measure in measures:
            quality = self.evaluate_measure(measure)
            summaries[quality.measure] = quality.mean_curves()
        return summaries

    def relevance_distribution(self) -> dict[LikertRating, int]:
        """Histogram of the median relevance judgements (a sanity check)."""
        histogram: dict[LikertRating, int] = {}
        for candidates in self.data.relevance.values():
            for rating in candidates.values():
                histogram[rating] = histogram.get(rating, 0) + 1
        return histogram
