"""Statistical significance testing for measure comparisons.

The paper reports paired t-tests (p < 0.05) when comparing the per-query
ranking correctness of two algorithms.  A pure-Python implementation of
the paired t-test is provided (with the p-value from the incomplete beta
function via SciPy when available, or a normal approximation otherwise),
so significance statements in the benchmarks do not silently depend on
optional packages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

try:
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover - SciPy is normally present
    _scipy_stats = None

__all__ = ["PairedTTestResult", "paired_t_test"]


@dataclass(frozen=True)
class PairedTTestResult:
    """Result of a paired t-test."""

    statistic: float
    p_value: float
    degrees_of_freedom: int
    mean_difference: float

    @property
    def significant(self) -> bool:
        """Whether the difference is significant at the paper's 0.05 level."""
        return self.p_value < 0.05


def _two_sided_p_from_t(t_statistic: float, dof: int) -> float:
    """Two-sided p-value of a t statistic.

    Uses SciPy's exact survival function when available and a normal
    approximation (adequate for dof >= 8, which all experiments satisfy)
    otherwise.
    """
    if _scipy_stats is not None:
        return float(2.0 * _scipy_stats.t.sf(abs(t_statistic), dof))
    # Normal approximation with a light dof correction.
    adjusted = abs(t_statistic) * (1.0 - 1.0 / (4.0 * dof))
    return float(2.0 * 0.5 * math.erfc(adjusted / math.sqrt(2.0)))


def paired_t_test(first: Sequence[float], second: Sequence[float]) -> PairedTTestResult:
    """Paired t-test over two matched samples (e.g. per-query correctness).

    Raises
    ------
    ValueError
        If the samples differ in length or contain fewer than two pairs.
    """
    if len(first) != len(second):
        raise ValueError("paired samples must have the same length")
    if len(first) < 2:
        raise ValueError("need at least two pairs for a paired t-test")
    differences = [a - b for a, b in zip(first, second)]
    count = len(differences)
    mean_diff = sum(differences) / count
    variance = sum((d - mean_diff) ** 2 for d in differences) / (count - 1)
    dof = count - 1
    if variance == 0.0:
        statistic = 0.0 if mean_diff == 0.0 else math.inf
        p_value = 1.0 if mean_diff == 0.0 else 0.0
        return PairedTTestResult(statistic, p_value, dof, mean_diff)
    statistic = mean_diff / math.sqrt(variance / count)
    p_value = _two_sided_p_from_t(statistic, dof)
    return PairedTTestResult(statistic, p_value, dof, mean_diff)
