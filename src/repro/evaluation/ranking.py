"""Experiment 1 harness: algorithmic ranking against the expert consensus.

For every query workflow of the ranking experiment, a similarity
algorithm ranks the query's 10 candidate workflows; the ranking is
compared to the BioConsert consensus of the expert rankings with the
correctness and completeness metrics.  The paper's Figures 5-9 and 12
are all means (and standard deviations) of these per-query values across
different algorithm configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.base import WorkflowSimilarityMeasure
from ..core.framework import SimilarityFramework
from ..goldstandard.rankings import Ranking
from ..goldstandard.study import RankingExperimentData
from ..repository.repository import WorkflowRepository
from .metrics import correctness_and_completeness, mean_and_std
from .significance import PairedTTestResult, paired_t_test

__all__ = ["RankingQuality", "RankingEvaluation"]


@dataclass
class RankingQuality:
    """Per-measure summary of ranking performance."""

    measure: str
    per_query_correctness: dict[str, float] = field(default_factory=dict)
    per_query_completeness: dict[str, float] = field(default_factory=dict)
    skipped_queries: list[str] = field(default_factory=list)

    @property
    def mean_correctness(self) -> float:
        return mean_and_std(self.per_query_correctness.values())[0]

    @property
    def std_correctness(self) -> float:
        return mean_and_std(self.per_query_correctness.values())[1]

    @property
    def mean_completeness(self) -> float:
        return mean_and_std(self.per_query_completeness.values())[0]

    @property
    def evaluated_queries(self) -> int:
        return len(self.per_query_correctness)

    def paired_values(self, other: "RankingQuality") -> tuple[list[float], list[float]]:
        """Correctness values of both measures over the shared queries."""
        shared = sorted(
            set(self.per_query_correctness) & set(other.per_query_correctness)
        )
        return (
            [self.per_query_correctness[query] for query in shared],
            [other.per_query_correctness[query] for query in shared],
        )


class RankingEvaluation:
    """Evaluates similarity measures on the ranking experiment's gold standard."""

    def __init__(
        self,
        repository: WorkflowRepository,
        data: RankingExperimentData,
        *,
        framework: SimilarityFramework | None = None,
    ) -> None:
        self.repository = repository
        self.data = data
        self.framework = framework or SimilarityFramework()

    # -- single measure ----------------------------------------------------

    def algorithm_ranking(
        self, measure: WorkflowSimilarityMeasure, query_id: str
    ) -> Ranking:
        """The measure's ranking of the query's candidate workflows."""
        query = self.repository.get(query_id)
        scores = {
            candidate_id: measure.similarity(query, self.repository.get(candidate_id))
            for candidate_id in self.data.candidates[query_id]
        }
        return Ranking.from_scores(scores)

    def evaluate_measure(self, measure: str | WorkflowSimilarityMeasure) -> RankingQuality:
        """Correctness/completeness of one measure over all queries.

        Queries the measure is not applicable to (e.g. Bag of Tags for an
        untagged query workflow) are skipped, exactly as in the paper.
        """
        instance = self.framework.measure(measure)
        quality = RankingQuality(measure=instance.name)
        for query_id in self.data.query_ids:
            query = self.repository.get(query_id)
            if not instance.is_applicable_to(query):
                quality.skipped_queries.append(query_id)
                continue
            predicted = self.algorithm_ranking(instance, query_id)
            reference = self.data.consensus[query_id]
            correctness, completeness = correctness_and_completeness(reference, predicted)
            quality.per_query_correctness[query_id] = correctness
            quality.per_query_completeness[query_id] = completeness
        return quality

    # -- measure sets ---------------------------------------------------------

    def evaluate_measures(
        self, measures: Sequence[str | WorkflowSimilarityMeasure]
    ) -> dict[str, RankingQuality]:
        """Evaluate several measures; keyed by measure name."""
        results: dict[str, RankingQuality] = {}
        for measure in measures:
            quality = self.evaluate_measure(measure)
            results[quality.measure] = quality
        return results

    def best_configuration(
        self, candidates: Sequence[str | WorkflowSimilarityMeasure]
    ) -> tuple[str, RankingQuality]:
        """The candidate with the highest mean ranking correctness."""
        results = self.evaluate_measures(candidates)
        best_name = max(results, key=lambda name: results[name].mean_correctness)
        return best_name, results[best_name]

    # -- significance -----------------------------------------------------------

    def compare(
        self,
        first: RankingQuality | str | WorkflowSimilarityMeasure,
        second: RankingQuality | str | WorkflowSimilarityMeasure,
    ) -> PairedTTestResult:
        """Paired t-test of two measures' per-query correctness values."""
        first_quality = first if isinstance(first, RankingQuality) else self.evaluate_measure(first)
        second_quality = (
            second if isinstance(second, RankingQuality) else self.evaluate_measure(second)
        )
        values_first, values_second = first_quality.paired_values(second_quality)
        return paired_t_test(values_first, values_second)
