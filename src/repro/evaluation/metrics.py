"""Evaluation metrics (Section 4.3 of the paper).

* **Ranking correctness** compares the order of each pair of elements in
  an algorithmic ranking against the expert consensus ranking; pairs
  tied in either ranking do not count::

      correctness = (#concordant - #discordant) / (#concordant + #discordant)

* **Ranking completeness** penalises ties introduced by the algorithm
  where the experts distinguish the elements::

      completeness = (#concordant + #discordant) / #pairs ranked by experts

* **Precision at k** evaluates retrieval: the fraction of the top-k
  results whose (median) expert rating reaches a relevance threshold
  (*related*, *similar* or *very similar*).
"""

from __future__ import annotations

from statistics import mean, pstdev
from typing import Iterable, Mapping, Sequence

from ..goldstandard.rankings import Ranking, pair_order_counts
from ..goldstandard.ratings import LikertRating

__all__ = [
    "ranking_correctness",
    "ranking_completeness",
    "correctness_and_completeness",
    "precision_at_k",
    "precision_curve",
    "average_precision",
    "mean_and_std",
    "RELEVANCE_THRESHOLDS",
]

#: The three relevance thresholds the paper uses for retrieval evaluation.
RELEVANCE_THRESHOLDS: dict[str, LikertRating] = {
    "related": LikertRating.RELATED,
    "similar": LikertRating.SIMILAR,
    "very_similar": LikertRating.VERY_SIMILAR,
}


def ranking_correctness(reference: Ranking, predicted: Ranking) -> float:
    """Ranking correctness of ``predicted`` against the expert ``reference``.

    Ranges from -1 (perfectly anti-correlated) over 0 (uncorrelated) to 1
    (perfectly correlated); returns 0.0 when no pair is comparable.
    """
    counts = pair_order_counts(reference, predicted)
    if counts.compared == 0:
        return 0.0
    return (counts.concordant - counts.discordant) / counts.compared


def ranking_completeness(reference: Ranking, predicted: Ranking) -> float:
    """Fraction of expert-ordered pairs that the algorithm also orders."""
    counts = pair_order_counts(reference, predicted)
    expert_ordered = counts.concordant + counts.discordant + counts.tied_in_other_only
    if expert_ordered == 0:
        return 1.0
    return (counts.concordant + counts.discordant) / expert_ordered


def correctness_and_completeness(reference: Ranking, predicted: Ranking) -> tuple[float, float]:
    """Both ranking metrics computed from a single pair-order pass."""
    counts = pair_order_counts(reference, predicted)
    if counts.compared == 0:
        correctness = 0.0
    else:
        correctness = (counts.concordant - counts.discordant) / counts.compared
    expert_ordered = counts.concordant + counts.discordant + counts.tied_in_other_only
    completeness = 1.0 if expert_ordered == 0 else counts.compared / expert_ordered
    return correctness, completeness


def _relevance_flags(
    result_ids: Sequence[str],
    ratings: Mapping[str, LikertRating],
    threshold: LikertRating,
) -> list[int]:
    flags = []
    for workflow_id in result_ids:
        rating = ratings.get(workflow_id)
        relevant = rating is not None and rating.is_judgement and rating >= threshold
        flags.append(1 if relevant else 0)
    return flags


def precision_at_k(
    result_ids: Sequence[str],
    ratings: Mapping[str, LikertRating],
    k: int,
    *,
    threshold: LikertRating = LikertRating.SIMILAR,
) -> float:
    """Precision at rank ``k`` of a retrieval result list.

    Results without a rating are counted as not relevant (a conservative
    choice; the study rates every returned workflow, so this only matters
    for measures evaluated post hoc).
    """
    if k <= 0:
        raise ValueError("k must be positive")
    flags = _relevance_flags(result_ids[:k], ratings, threshold)
    if not flags:
        return 0.0
    return sum(flags) / k


def precision_curve(
    result_ids: Sequence[str],
    ratings: Mapping[str, LikertRating],
    *,
    max_k: int = 10,
    threshold: LikertRating = LikertRating.SIMILAR,
) -> list[float]:
    """Precision at every rank position ``1..max_k`` (the curves of Fig. 10/11)."""
    return [
        precision_at_k(result_ids, ratings, k, threshold=threshold)
        for k in range(1, max_k + 1)
    ]


def average_precision(
    result_ids: Sequence[str],
    ratings: Mapping[str, LikertRating],
    *,
    threshold: LikertRating = LikertRating.SIMILAR,
) -> float:
    """Average precision of a result list (an additional summary metric)."""
    flags = _relevance_flags(result_ids, ratings, threshold)
    relevant_total = sum(flags)
    if relevant_total == 0:
        return 0.0
    hits = 0
    precision_sum = 0.0
    for index, flag in enumerate(flags, start=1):
        if flag:
            hits += 1
            precision_sum += hits / index
    return precision_sum / relevant_total


def mean_and_std(values: Iterable[float]) -> tuple[float, float]:
    """Mean and population standard deviation, (0, 0) for empty input."""
    values = list(values)
    if not values:
        return 0.0, 0.0
    if len(values) == 1:
        return values[0], 0.0
    return mean(values), pstdev(values)
