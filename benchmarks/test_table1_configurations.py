"""Table 1 — existing approaches to scientific workflow comparison.

Table 1 of the paper is a taxonomy of published approaches and how they
treat each comparison task.  The reproduction maps every row to a
runnable configuration of this framework
(:func:`repro.core.paper_approach_matrix`); the benchmark instantiates
each configuration and runs it on a pair of corpus workflows, which
verifies that every prior approach is expressible in the framework (the
paper's claim: "This approach subsumes all previously proposed methods").
"""

from __future__ import annotations

from repro.core import create_measure, paper_approach_matrix
from repro.evaluation import format_simple_table

from bench_config import GED_TIMEOUT, describe_scale


def run_approach_matrix(corpus):
    workflows = corpus.repository.workflows()
    first, second = workflows[0], workflows[1]
    rows = []
    for entry in paper_approach_matrix():
        measure = create_measure(entry["configuration"], ged_timeout=GED_TIMEOUT)
        similarity = measure.similarity(first, second)
        rows.append(
            (
                entry["reference"],
                entry["class"],
                entry["configuration"],
                f"{similarity:.3f}",
            )
        )
    return rows


def test_table1_every_published_approach_is_runnable(benchmark, bench_corpus):
    rows = benchmark.pedantic(run_approach_matrix, args=(bench_corpus,), rounds=1, iterations=1)
    print()
    print(describe_scale())
    print(
        format_simple_table(
            ("reference", "class", "configuration", "similarity(wf1, wf2)"),
            rows,
            title="Table 1: published approaches expressed as framework configurations",
        )
    )
    assert len(rows) == 9
    # Every configuration produced a well-defined similarity value.
    for row in rows:
        value = float(row[3])
        assert value == value  # not NaN
