"""Load benchmark for the async multi-tenant serving layer.

Starts a real :class:`repro.serve.SimilarityServer` on an ephemeral port
and drives it with an asyncio load generator at increasing client
concurrency (default 1, 4 and 16 concurrent keep-alive connections).
For every level it reports QPS, p50/p99 end-to-end latency and the
micro-batch fold factor (requests folded per engine batch, read from the
server's own ``/v1/{tenant}/stats`` deltas), and writes everything to
``BENCH_serve.json`` at the repository root.

The benchmark doubles as the serving layer's equivalence gate: every
response is compared against the per-query *sequential* reference
computed on a direct :class:`~repro.api.SimilarityService` before the
server starts.  Any mismatch — one request folded into a cross-request
batch answering differently than the same request alone — fails the run
(exit 1), as does a fold factor that never rises above 1 at the highest
concurrency (the micro-batcher would be dead weight).

A final section times an identical serial workload with tracing enabled
(``trace_sample=1.0``) and disabled (``trace_sample=0.0``): the report's
``obs`` block records ``enabled_ms`` / ``disabled_ms`` (min of
``--obs-repeats`` passes each) and the run fails if tracing costs more
than 5% or changes any response byte.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py \\
        --root /tmp/serve-root --requests 24 --concurrency 1,4,16

Without ``--root`` a temporary single-tenant root is generated; with it
(CI smoke) the pre-built tenants under the given serving root are used
as-is and the first discovered tenant takes the load.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

_HERE = Path(__file__).resolve().parent
_ROOT = _HERE.parent
sys.path.insert(0, str(_ROOT / "src"))

from repro.api import (  # noqa: E402
    ExecutionPolicy,
    ResultSet,
    SearchRequest,
    SimilarityService,
)
from repro.corpus.generator import CorpusSpec, generate_myexperiment_corpus  # noqa: E402
from repro.serve import ServeClient, ServeConfig, SimilarityServer  # noqa: E402
from repro.store import discover_tenants  # noqa: E402

DEFAULT_MEASURE = "MS_ip_te_pll"


def build_tenant_root(workflows: int, seed: int, measure: str) -> Path:
    """Generate a throwaway serving root with one persisted tenant."""
    root = Path(tempfile.mkdtemp(prefix="repro-bench-serve-"))
    corpus = generate_myexperiment_corpus(
        CorpusSpec(workflow_count=workflows, seed=seed)
    )
    service = SimilarityService(corpus.repository)
    service.attach_cache_dir(root / "bench")
    service.build_index()
    # Warm the pair-score cache so the served load measures serving
    # overhead and batching, not first-touch similarity computation.
    query_ids = corpus.repository.identifiers()
    service.search(SearchRequest(measure=measure, queries=query_ids, k=10))
    service.persist()
    service.close()
    return root


def sequential_reference(
    tenant_dir: Path, query_ids: "list[str]", measure: str, k: int
) -> "dict[str, list[tuple[str, float, int]]]":
    """Per-query ground truth from the sequential seed path, one query
    at a time — exactly what a non-batched, non-accelerated server would
    answer."""
    service = SimilarityService.open(cache_dir=tenant_dir)
    reference = {}
    for query_id in query_ids:
        result = service.search(
            SearchRequest(
                measure=measure,
                queries=[query_id],
                k=k,
                policy=ExecutionPolicy.sequential(),
            )
        )
        reference[query_id] = result.result_tuples()[0]
    service.close()
    return reference


async def run_level(
    server: SimilarityServer,
    tenant: str,
    query_ids: "list[str]",
    reference: "dict[str, list[tuple[str, float, int]]]",
    *,
    concurrency: int,
    requests: int,
    measure: str,
    k: int,
) -> dict:
    """Drive ``requests`` searches through ``concurrency`` keep-alive
    clients and report latency, throughput, fold factor and mismatches."""
    metrics = server.metrics.tenant(tenant)
    batches_before = metrics.batches
    folded_before = metrics.folded_requests

    queue: "asyncio.Queue[str]" = asyncio.Queue()
    for index in range(requests):
        queue.put_nowait(query_ids[index % len(query_ids)])

    latencies: "list[float]" = []
    mismatches: "list[str]" = []
    errors: "list[str]" = []

    async def worker() -> None:
        client = ServeClient("127.0.0.1", server.port)
        try:
            while True:
                try:
                    query_id = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                payload = {
                    "measure": {"name": measure},
                    "queries": [query_id],
                    "k": k,
                }
                started = time.perf_counter()
                status, _headers, body = await client.post(
                    f"/v1/{tenant}/search", payload
                )
                latencies.append(time.perf_counter() - started)
                if status != 200:
                    errors.append(f"{query_id}: HTTP {status}: {body}")
                    continue
                answered = ResultSet.from_dict(body).result_tuples()[0]
                if answered != reference[query_id]:
                    mismatches.append(query_id)
        finally:
            await client.close()

    wall_started = time.perf_counter()
    await asyncio.gather(*[worker() for _ in range(concurrency)])
    wall_seconds = time.perf_counter() - wall_started

    batches = metrics.batches - batches_before
    folded = metrics.folded_requests - folded_before
    ordered = sorted(latencies)

    def pct(fraction: float) -> float:
        import math

        rank = max(1, math.ceil(fraction * len(ordered)))
        return ordered[rank - 1] * 1000.0

    return {
        "concurrency": concurrency,
        "requests": requests,
        "wall_seconds": round(wall_seconds, 4),
        "qps": round(requests / wall_seconds, 2) if wall_seconds else None,
        "latency_ms": {
            "p50": round(pct(0.50), 3),
            "p99": round(pct(0.99), 3),
            "mean": round(sum(ordered) / len(ordered) * 1000.0, 3),
        },
        "batches": batches,
        "folded_requests": folded,
        "fold_factor": round(folded / batches, 3) if batches else None,
        "mismatches": mismatches,
        "errors": errors,
    }


async def measure_obs_overhead(
    root: Path,
    tenant: str,
    query_ids: "list[str]",
    reference: "dict[str, list[tuple[str, float, int]]]",
    args: argparse.Namespace,
) -> dict:
    """Time an identical serial workload with tracing on and off.

    Each mode gets its own server (the tracer is process-global while a
    server runs, so the modes cannot share a process concurrently): one
    warm-up pass that also checks every response against the sequential
    reference, then ``--obs-repeats`` timed passes with the *minimum*
    wall time kept — min-of-repeats is the standard defence against
    scheduler noise when the gate is a few percent.
    """
    timings: "dict[str, float]" = {}
    mismatches: "list[str]" = []
    for mode, sample in (("enabled", 1.0), ("disabled", 0.0)):
        config = ServeConfig(
            root=str(root),
            port=0,
            batch_window=0.0,
            max_inflight=64,
            trace_sample=sample,
        )
        server = SimilarityServer(config)
        await server.start()
        try:
            client = ServeClient("127.0.0.1", server.port)
            try:

                async def one_pass(check: bool) -> float:
                    started = time.perf_counter()
                    for index in range(args.obs_requests):
                        query_id = query_ids[index % len(query_ids)]
                        payload = {
                            "measure": {"name": args.measure},
                            "queries": [query_id],
                            "k": args.k,
                        }
                        status, _headers, body = await client.post(
                            f"/v1/{tenant}/search", payload
                        )
                        if status != 200:
                            mismatches.append(f"{mode}:{query_id}: HTTP {status}")
                        elif check:
                            answered = ResultSet.from_dict(body).result_tuples()[0]
                            if answered != reference[query_id]:
                                mismatches.append(f"{mode}:{query_id}")
                    return time.perf_counter() - started

                await one_pass(check=True)
                best = min(
                    [await one_pass(check=False) for _ in range(args.obs_repeats)]
                )
                timings[mode] = best * 1000.0
            finally:
                await client.close()
        finally:
            await server.stop()
    ratio = timings["enabled"] / timings["disabled"] if timings["disabled"] else None
    return {
        "requests_per_pass": args.obs_requests,
        "timed_repeats": args.obs_repeats,
        "enabled_ms": round(timings["enabled"], 3),
        "disabled_ms": round(timings["disabled"], 3),
        "overhead_ratio": round(ratio, 4) if ratio is not None else None,
        "mismatches": mismatches,
        "identical": not mismatches,
        "within_5_percent": ratio is not None and ratio <= 1.05,
    }


async def run_benchmark(args: argparse.Namespace) -> int:
    owns_root = args.root is None
    if owns_root:
        root = build_tenant_root(args.workflows, args.seed, args.measure)
    else:
        root = Path(args.root)
        if not root.is_dir():
            print(f"error: serving root {args.root!r} is not a directory")
            return 1
    try:
        tenants = discover_tenants(root)
        if not tenants:
            print(f"error: no tenants with persisted stores under {root}")
            return 1
        tenant = tenants[0]
        levels = [int(level) for level in args.concurrency.split(",")]

        direct = SimilarityService.open(cache_dir=root / tenant)
        query_ids = direct.repository.identifiers()[: args.queries]
        corpus_size = len(direct)
        direct.close()
        print(
            f"serve benchmark: tenant {tenant!r} ({corpus_size} workflows), "
            f"{args.requests} requests/level at concurrency {levels}, "
            f"measure={args.measure}, k={args.k}, "
            f"batch window {args.window_ms:.0f}ms"
        )
        reference = sequential_reference(root / tenant, query_ids, args.measure, args.k)

        config = ServeConfig(
            root=str(root),
            port=0,
            batch_window=args.window_ms / 1000.0,
            batch_max_requests=max(levels),
            max_inflight=max(max(levels), 16),
        )
        server = SimilarityServer(config)
        await server.start()
        try:
            results = []
            for concurrency in levels:
                level = await run_level(
                    server,
                    tenant,
                    query_ids,
                    reference,
                    concurrency=concurrency,
                    requests=args.requests,
                    measure=args.measure,
                    k=args.k,
                )
                results.append(level)
                print(
                    f"  c={concurrency:3d}: {level['qps']:8.1f} req/s  "
                    f"p50 {level['latency_ms']['p50']:7.1f}ms  "
                    f"p99 {level['latency_ms']['p99']:7.1f}ms  "
                    f"fold {level['fold_factor']}  "
                    f"({level['batches']} batches, "
                    f"{len(level['mismatches'])} mismatches, "
                    f"{len(level['errors'])} errors)"
                )
            snapshot = server.metrics.tenant(tenant).snapshot()
        finally:
            await server.stop()
        obs = await measure_obs_overhead(root, tenant, query_ids, reference, args)
        print(
            f"  obs: enabled {obs['enabled_ms']:.1f}ms vs disabled "
            f"{obs['disabled_ms']:.1f}ms over {obs['requests_per_pass']} requests "
            f"(ratio {obs['overhead_ratio']})"
        )
    finally:
        if owns_root:
            shutil.rmtree(root, ignore_errors=True)

    mismatched = [q for level in results for q in level["mismatches"]]
    errored = [e for level in results for e in level["errors"]]
    top = results[-1]
    fold_ok = top["fold_factor"] is not None and top["fold_factor"] > 1.0
    equivalence_ok = not mismatched and not errored
    obs_ok = obs["identical"] and obs["within_5_percent"]
    ok = equivalence_ok and (fold_ok or max(levels) <= 1) and obs_ok

    report = {
        "benchmark": "serve_load",
        "tenant": tenant,
        "workflows": corpus_size,
        "measure": args.measure,
        "k": args.k,
        "queries": len(query_ids),
        "requests_per_level": args.requests,
        "batch_window_ms": args.window_ms,
        "levels": results,
        "tenant_stats": snapshot,
        "equivalence": {
            "reference": "per-query sequential seed path",
            "mismatches": mismatched,
            "errors": errored,
            "identical": equivalence_ok,
        },
        "fold_factor_at_max_concurrency": top["fold_factor"],
        "obs": obs,
        "ok": ok,
    }
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    if not equivalence_ok:
        print(
            f"FAIL: {len(mismatched)} batched responses differed from the "
            f"sequential reference, {len(errored)} requests errored"
        )
        return 1
    if not fold_ok and max(levels) > 1:
        print(
            f"FAIL: fold factor {top['fold_factor']} at concurrency "
            f"{max(levels)} — concurrent requests never shared an engine batch"
        )
        return 1
    if not obs_ok:
        print(
            f"FAIL: observability overhead ratio {obs['overhead_ratio']} "
            f"exceeds 1.05 or traced responses differed "
            f"({len(obs['mismatches'])} mismatches)"
        )
        return 1
    print(
        f"OK: all {sum(level['requests'] for level in results)} responses "
        f"bit-identical to the sequential reference, "
        f"fold factor {top['fold_factor']} at concurrency {max(levels)}"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--root",
        default=None,
        help="existing serving root to benchmark (default: generate a "
        "temporary single-tenant root)",
    )
    parser.add_argument(
        "--concurrency",
        default="1,4,16",
        help="comma-separated concurrent client counts (default 1,4,16)",
    )
    parser.add_argument(
        "--requests", type=int, default=48, help="requests per concurrency level"
    )
    parser.add_argument("--queries", type=int, default=8, help="distinct query ids")
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument("--measure", default=DEFAULT_MEASURE)
    parser.add_argument(
        "--workflows",
        type=int,
        default=60,
        help="corpus size when generating a temporary root",
    )
    parser.add_argument("--seed", type=int, default=20140901)
    parser.add_argument(
        "--window-ms",
        type=float,
        default=25.0,
        help="server batch window in milliseconds",
    )
    parser.add_argument(
        "--obs-requests",
        type=int,
        default=64,
        help="requests per timed pass of the tracing-overhead measurement",
    )
    parser.add_argument(
        "--obs-repeats",
        type=int,
        default=3,
        help="timed passes per tracing mode (minimum wall time is kept)",
    )
    parser.add_argument("--output", default=str(_ROOT / "BENCH_serve.json"))
    args = parser.parse_args()
    return asyncio.run(run_benchmark(args))


if __name__ == "__main__":
    sys.exit(main())
