"""Figure 9 — best standalone configurations and ensembles of two algorithms.

Figure 9a compares each algorithm's best configuration against the
annotation-based approaches; Figure 9b shows the best ensembles of two
algorithms (mean of scores).

Paper shape expectations checked here:

* appropriately tuned structural measures (ip, te, pll) are competitive
  with — and not clearly below — the annotation measures;
* the ensembles of BW with MS/PS (ip, te, pll) outperform every single
  algorithm and are more stable (smaller standard deviation than the
  weaker member).
"""

from __future__ import annotations

from repro.core import best_configuration_names
from repro.evaluation import format_ranking_table

from bench_config import describe_scale

ENSEMBLES = ["BW+MS_ip_te_pll", "BW+PS_ip_te_pll"]


def run_best_and_ensembles(evaluation):
    singles = evaluation.evaluate_measures(list(best_configuration_names().values()))
    ensembles = evaluation.evaluate_measures(ENSEMBLES)
    return singles, ensembles


def test_fig09_best_configurations_and_ensembles(benchmark, bench_ranking_evaluation):
    singles, ensembles = benchmark.pedantic(
        run_best_and_ensembles, args=(bench_ranking_evaluation,), rounds=1, iterations=1
    )
    print()
    print(describe_scale())
    print(format_ranking_table(singles, title="Figure 9a: best standalone configurations"))
    print()
    print(format_ranking_table(ensembles, title="Figure 9b: best ensembles of two algorithms"))

    bw = singles["BW"]
    best_structural = max(
        (singles[name] for name in ("MS_ip_te_pll", "PS_ip_te_pll")),
        key=lambda quality: quality.mean_correctness,
    )
    best_ensemble = max(ensembles.values(), key=lambda quality: quality.mean_correctness)

    # Tuned structural measures are competitive with BW.
    assert best_structural.mean_correctness >= bw.mean_correctness - 0.2

    # Ensembles outperform (or at least match) every single algorithm.
    best_single = max(singles.values(), key=lambda quality: quality.mean_correctness)
    assert best_ensemble.mean_correctness >= best_single.mean_correctness - 0.05

    # Ensembles are more stable than the weaker member.
    weaker_member_std = max(bw.std_correctness, best_structural.std_correctness)
    assert best_ensemble.std_correctness <= weaker_member_std + 0.05

    comparison = bench_ranking_evaluation.compare(best_ensemble, bw)
    print(
        f"paired t-test best ensemble vs BW: t={comparison.statistic:.2f}, "
        f"p={comparison.p_value:.4f}, mean diff={comparison.mean_difference:.3f}"
    )
