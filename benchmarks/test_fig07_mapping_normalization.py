"""Figure 7 — module mapping strategy and normalisation.

Two findings of Section 5.1.3:

1. greedy mapping of modules (Silva et al.) performs like maximum-weight
   matching — module mappings are mostly unambiguous;
2. omitting the normalisation of graph edit distance (Xiang & Madey)
   significantly reduces ranking correctness.
"""

from __future__ import annotations

from repro.evaluation import format_ranking_table

from bench_config import describe_scale

MEASURES = [
    "MS_np_ta_pw3",
    "MS_np_ta_pw3_greedy",
    "GE_np_ta_pw0",
    "GE_np_ta_pw0_nonorm",
    "MS_np_ta_pw3_nonorm",
]


def run_mapping_normalization(evaluation):
    return evaluation.evaluate_measures(MEASURES)


def test_fig07_mapping_and_normalization(benchmark, bench_ranking_evaluation):
    results = benchmark.pedantic(
        run_mapping_normalization, args=(bench_ranking_evaluation,), rounds=1, iterations=1
    )
    print()
    print(describe_scale())
    print(
        format_ranking_table(
            results, title="Figure 7: greedy mapping and omitted normalisation"
        )
    )

    greedy = results["MS_np_ta_pw3_greedy"]
    maximum_weight = results["MS_np_ta_pw3"]
    ge_norm = results["GE_np_ta_pw0"]
    ge_nonorm = results["GE_np_ta_pw0_nonorm"]

    # (1) Greedy mapping has no (notable) impact on ranking quality.
    assert abs(greedy.mean_correctness - maximum_weight.mean_correctness) < 0.15

    # (2) Omitting normalisation does not help graph edit distance.  GE runs
    # under a wall-clock timeout, so its per-pair costs (and hence the exact
    # correctness value) vary slightly between runs at the small scale; the
    # assertion therefore allows a noise margin, while the paper's clear-cut
    # significance shows up at REPRO_BENCH_SCALE=full.
    assert ge_nonorm.mean_correctness <= ge_norm.mean_correctness + 0.15
    comparison = bench_ranking_evaluation.compare(ge_norm, ge_nonorm)
    print(
        f"paired t-test GE normalised vs non-normalised: t={comparison.statistic:.2f}, "
        f"p={comparison.p_value:.4f}"
    )

    # Normalisation also matters for the (deterministic) set-based measures:
    # dropping it never improves MS.
    ms_nonorm = results["MS_np_ta_pw3_nonorm"]
    assert ms_nonorm.mean_correctness <= maximum_weight.mean_correctness + 0.05
