"""Figure 6 — impact of the module comparison scheme (pX) on ranking.

Figure 6a varies the module comparison scheme of the Module Sets measure
(pw0, pw3, pll, plm); Figure 6b shows Path Sets and Graph Edit Distance
with the tuned pw3 scheme.

Paper shape expectations checked here:

* the uniform weighting pw0 is not the best scheme for MS;
* pll (label edit distance) is on par with the tuned multi-attribute
  scheme pw3 (difference small);
* strict label matching plm loses ranking completeness — its apparent
  correctness comes from tying workflows the experts distinguish;
* GE benefits least from better module schemes (its results stay the
  weakest).
"""

from __future__ import annotations

from repro.evaluation import format_ranking_table

from bench_config import describe_scale

MS_SCHEMES = ["MS_np_ta_pw0", "MS_np_ta_pw3", "MS_np_ta_pll", "MS_np_ta_plm"]
OTHER_MEASURES = ["PS_np_ta_pw3", "GE_np_ta_pw3", "PS_np_ta_pll", "GE_np_ta_pll"]


def run_module_schemes(evaluation):
    return evaluation.evaluate_measures(MS_SCHEMES + OTHER_MEASURES)


def test_fig06_module_comparison_schemes(benchmark, bench_ranking_evaluation):
    results = benchmark.pedantic(
        run_module_schemes, args=(bench_ranking_evaluation,), rounds=1, iterations=1
    )
    print()
    print(describe_scale())
    print(
        format_ranking_table(
            {name: results[name] for name in MS_SCHEMES},
            title="Figure 6a: module comparison schemes for MS",
        )
    )
    print()
    print(
        format_ranking_table(
            {name: results[name] for name in OTHER_MEASURES},
            title="Figure 6b: PS and GE with tuned schemes",
        )
    )

    pw0 = results["MS_np_ta_pw0"]
    pw3 = results["MS_np_ta_pw3"]
    pll = results["MS_np_ta_pll"]
    plm = results["MS_np_ta_plm"]

    # pw0 is not the best scheme.
    assert pw0.mean_correctness <= max(pw3.mean_correctness, pll.mean_correctness) + 0.02
    # pll is on par with pw3 (no large gap in either direction).
    assert abs(pll.mean_correctness - pw3.mean_correctness) < 0.25
    # plm trades completeness for (apparent) correctness.
    assert plm.mean_completeness < pll.mean_completeness
    # GE stays behind MS/PS regardless of the module scheme.
    assert results["GE_np_ta_pw3"].mean_correctness <= pw3.mean_correctness + 0.05
    assert results["GE_np_ta_pll"].mean_correctness <= pll.mean_correctness + 0.05
