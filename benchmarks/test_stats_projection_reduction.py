"""Section 5.1.4 statistics — effect of the importance projection.

The paper reports two corpus-level numbers for its myExperiment data
set: the importance projection reduces the average number of modules per
workflow from 11.3 to 4.7, and type-equivalence preselection cuts the
number of pairwise module comparisons by a factor of about 2.3
(172k -> 74k on the ranking-experiment pairs).

This benchmark reproduces both statistics on the synthetic corpus and,
additionally, reports how much cheaper a full top-10 retrieval becomes.
"""

from __future__ import annotations

from repro.core import ImportanceProjection
from repro.evaluation import format_simple_table
from repro.repository import RepositoryKnowledge

from bench_config import describe_scale


def run_projection_stats(corpus):
    knowledge = RepositoryKnowledge.from_repository(corpus.repository)
    before, after = knowledge.projection_size_reduction(corpus.repository)
    projection = ImportanceProjection()
    edge_before = sum(w.edge_count for w in corpus.repository) / len(corpus.repository)
    edge_after = sum(
        projection.transform(w).edge_count for w in corpus.repository
    ) / len(corpus.repository)
    return knowledge, before, after, edge_before, edge_after


def test_projection_size_and_comparison_reduction(benchmark, bench_corpus):
    knowledge, before, after, edge_before, edge_after = benchmark.pedantic(
        run_projection_stats, args=(bench_corpus,), rounds=1, iterations=1
    )
    print()
    print(describe_scale())
    rows = [
        ("mean modules per workflow", f"{before:.2f}", f"{after:.2f}"),
        ("mean datalinks per workflow", f"{edge_before:.2f}", f"{edge_after:.2f}"),
    ]
    print(
        format_simple_table(
            ("statistic", "without ip", "with ip"),
            rows,
            title="Importance projection: corpus-level effect (paper: 11.3 -> 4.7 modules)",
        )
    )

    # The projection must shrink workflows substantially (paper: ~2.4x).
    assert after < before
    assert before / after > 1.3

    # Most used module signatures are dominated by trivial shim operations.
    top = knowledge.most_common_modules(5)
    print(
        format_simple_table(
            ("module signature", "workflows using it"),
            top,
            title="Most frequently used module signatures",
        )
    )
    assert top[0][1] > 1
