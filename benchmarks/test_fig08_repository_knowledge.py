"""Figure 8 — including repository knowledge (te preselection, ip projection).

Section 5.1.4 reports that

* type-equivalence preselection (te) keeps ranking correctness at the
  level of comparing all module pairs (ta) while reducing the number of
  pairwise module comparisons by a factor of roughly 2.3;
* strict type matching (tm) decreases correctness;
* the importance projection (ip) benefits most algorithms, most visibly
  graph edit distance.
"""

from __future__ import annotations

from repro.core import create_measure
from repro.evaluation import format_ranking_table, format_simple_table

from bench_config import GED_TIMEOUT, describe_scale

RANKING_MEASURES = [
    "MS_np_ta_pll",
    "MS_np_te_pll",
    "MS_np_tm_pll",
    "MS_ip_te_pll",
    "PS_np_ta_pll",
    "PS_ip_te_pll",
    "GE_np_ta_pll",
    "GE_ip_te_pll",
]


def run_repository_knowledge(evaluation):
    return evaluation.evaluate_measures(RANKING_MEASURES)


def count_pair_comparisons(corpus, pairs):
    """Module-pair comparisons performed with and without te preselection."""
    unrestricted = create_measure("MS_np_ta_pll", ged_timeout=GED_TIMEOUT)
    restricted = create_measure("MS_np_te_pll", ged_timeout=GED_TIMEOUT)
    repository = corpus.repository
    for query_id, candidate_id in pairs:
        unrestricted.similarity(repository.get(query_id), repository.get(candidate_id))
        restricted.similarity(repository.get(query_id), repository.get(candidate_id))
    return (
        unrestricted.stats.module_pair_comparisons,
        restricted.stats.module_pair_comparisons,
    )


def test_fig08_repository_knowledge(benchmark, bench_ranking_evaluation, bench_ranking_data, bench_corpus):
    results = benchmark.pedantic(
        run_repository_knowledge, args=(bench_ranking_evaluation,), rounds=1, iterations=1
    )
    print()
    print(describe_scale())
    print(
        format_ranking_table(
            results, title="Figure 8: module pair preselection and importance projection"
        )
    )

    ta = results["MS_np_ta_pll"]
    te = results["MS_np_te_pll"]
    tm = results["MS_np_tm_pll"]

    # te keeps correctness comparable to ta; tm does not improve over te.
    assert abs(te.mean_correctness - ta.mean_correctness) < 0.15
    assert tm.mean_correctness <= te.mean_correctness + 0.1

    # ip does not hurt, and typically helps, each structural measure.
    assert results["MS_ip_te_pll"].mean_correctness >= results["MS_np_ta_pll"].mean_correctness - 0.15
    assert results["GE_ip_te_pll"].mean_correctness >= results["GE_np_ta_pll"].mean_correctness - 0.1

    # Pair-comparison reduction factor of te (paper: about 2.3x).
    pairs = [
        (query_id, candidate_id)
        for query_id, candidates in bench_ranking_data.candidates.items()
        for candidate_id in candidates
    ]
    all_pairs, te_pairs = count_pair_comparisons(bench_corpus, pairs)
    factor = all_pairs / max(1, te_pairs)
    print(
        format_simple_table(
            ("strategy", "module pair comparisons"),
            [("ta (all pairs)", all_pairs), ("te (type equivalence)", te_pairs)],
            title=f"Module pair comparisons on the ranking-experiment pairs (reduction factor {factor:.2f}x)",
        )
    )
    assert factor > 1.5
