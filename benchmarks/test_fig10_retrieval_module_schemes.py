"""Figure 10 — retrieval precision of MS under different module schemes.

Retrieval precision at k for the Module Sets measure with the module
comparison schemes pw3, pll and plm, each with and without repository
knowledge (ip + te), at the three relevance thresholds.

Paper shape expectations checked here:

* differences between the schemes shrink as the relevance threshold
  rises — finding the *very similar* workflows works with any scheme;
* strict label matching (plm) is the weakest scheme for retrieving
  *related* workflows;
* adding repository knowledge (ip, te) does not hurt and tends to help
  precision for the related threshold.
"""

from __future__ import annotations

from repro.evaluation import RetrievalEvaluation, format_precision_table, mean_and_std

from bench_config import SCALE, describe_scale

CONFIGURATIONS = [
    "MS_np_ta_pw3",
    "MS_ip_te_pw3",
    "MS_np_ta_pll",
    "MS_ip_te_pll",
    "MS_np_ta_plm",
    "MS_ip_te_plm",
]


def run_retrieval(engine, data, study):
    evaluation = RetrievalEvaluation(engine, data, study=study, max_k=SCALE["top_k"])
    return evaluation.evaluate_measures(CONFIGURATIONS)


def test_fig10_retrieval_module_schemes(
    benchmark, bench_engine, bench_retrieval_data, bench_study
):
    curves = benchmark.pedantic(
        run_retrieval,
        args=(bench_engine, bench_retrieval_data, bench_study),
        rounds=1,
        iterations=1,
    )
    print()
    print(describe_scale())
    for threshold in ("related", "similar", "very_similar"):
        print()
        print(
            format_precision_table(
                curves,
                threshold=threshold,
                title=f"Figure 10 ({threshold}): precision at k for MS module schemes",
            )
        )

    k = SCALE["top_k"]

    def spread(threshold: str) -> float:
        values = [curve.at(threshold, k) for curve in curves.values()]
        return max(values) - min(values)

    # Differences between schemes shrink with rising relevance threshold.
    assert spread("very_similar") <= spread("related") + 0.1

    # plm is not better than pll for retrieving related workflows.
    assert curves["MS_np_ta_plm"].at("related", k) <= curves["MS_np_ta_pll"].at("related", k) + 0.1

    # Repository knowledge does not hurt pll retrieval.
    assert curves["MS_ip_te_pll"].at("related", k) >= curves["MS_np_ta_pll"].at("related", k) - 0.15

    mean_precision, _ = mean_and_std(
        [curve.at("related", k) for curve in curves.values()]
    )
    print(f"mean P@{k} across schemes (related): {mean_precision:.3f}")
