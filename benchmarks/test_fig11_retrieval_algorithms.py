"""Figure 11 — retrieval precision of structural vs annotational algorithms.

Retrieval precision at k over the whole repository for BW, BT and the
structural measures (MS, PS with pll, with and without ip/te; GE with
ip).

Paper shape expectations checked here:

* MS and PS deliver equivalent retrieval quality and are the best
  measures for retrieving related/similar workflows;
* GE finds the most similar workflows but falls behind for the lower
  relevance thresholds;
* BW performs well for related workflows but is not better than the
  tuned structural measures at the very-similar threshold.
"""

from __future__ import annotations

from repro.evaluation import RetrievalEvaluation, format_precision_table

from bench_config import SCALE, describe_scale

MEASURES = [
    "BW",
    "BT",
    "MS_np_ta_pll",
    "MS_ip_te_pll",
    "PS_np_ta_pll",
    "PS_ip_te_pll",
    "GE_ip_te_pll",
]


def run_retrieval(engine, data, study):
    evaluation = RetrievalEvaluation(engine, data, study=study, max_k=SCALE["top_k"])
    return evaluation.evaluate_measures(MEASURES)


def test_fig11_retrieval_algorithms(benchmark, bench_engine, bench_retrieval_data, bench_study):
    curves = benchmark.pedantic(
        run_retrieval,
        args=(bench_engine, bench_retrieval_data, bench_study),
        rounds=1,
        iterations=1,
    )
    print()
    print(describe_scale())
    for threshold in ("related", "similar", "very_similar"):
        print()
        print(
            format_precision_table(
                curves,
                threshold=threshold,
                title=f"Figure 11 ({threshold}): precision at k per algorithm",
            )
        )

    k = SCALE["top_k"]
    ms = curves["MS_ip_te_pll"]
    ps = curves["PS_ip_te_pll"]
    ge = curves["GE_ip_te_pll"]
    bw = curves["BW"]

    # MS and PS are equivalent within a small margin at every threshold.
    for threshold in ("related", "similar", "very_similar"):
        assert abs(ms.at(threshold, k) - ps.at(threshold, k)) < 0.25

    # GE falls behind MS/PS for related workflows.
    assert ge.at("related", k) <= max(ms.at("related", k), ps.at("related", k)) + 0.1

    # Structural measures retrieve related workflows at least as well as BT.
    assert ms.at("related", k) >= curves["BT"].at("related", k) - 0.2

    # BW does not dominate the tuned structural measures for very similar hits.
    assert bw.at("very_similar", k) <= max(
        ms.at("very_similar", k), ps.at("very_similar", k)
    ) + 0.15
