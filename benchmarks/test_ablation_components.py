"""Ablation benchmarks for design choices called out in DESIGN.md.

These are not figures of the paper; they quantify the implementation
choices of this reproduction and the paper's "future work" extensions:

* pure-Python Hungarian assignment vs the SciPy backend (same optimum);
* exact A* graph edit distance vs the assignment-based approximation;
* manual type-based importance scoring vs the automatic frequency-based
  scorer derived from the repository (the paper's suggested future work);
* mean-score ensembles vs rank-aggregation ensembles.
"""

from __future__ import annotations

import random

from repro.core import ImportanceProjection, create_measure
from repro.evaluation import format_simple_table
from repro.graphs import (
    GraphEditDistance,
    LabeledGraph,
    matching_weight,
    maximum_weight_matching,
)
from repro.repository import RepositoryKnowledge

from bench_config import describe_scale


def random_weight_matrix(rng, rows, cols):
    return [[rng.random() for _ in range(cols)] for _ in range(rows)]


class TestAssignmentBackends:
    def test_hungarian_matches_scipy_backend(self, benchmark):
        rng = random.Random(5)
        matrices = [random_weight_matrix(rng, 12, 12) for _ in range(20)]

        def pure_python():
            return [matching_weight(maximum_weight_matching(m, use_scipy=False)) for m in matrices]

        pure = benchmark(pure_python)
        scipy_based = [
            matching_weight(maximum_weight_matching(m, use_scipy=True)) for m in matrices
        ]
        for a, b in zip(pure, scipy_based):
            assert abs(a - b) < 1e-9
        print()
        print(describe_scale())
        print("pure-Python Hungarian and SciPy backend agree on all 20 matrices")


class TestGEDApproximation:
    def test_approximation_overestimates_but_tracks_exact(self, benchmark, bench_corpus):
        workflows = bench_corpus.repository.workflows()
        measure = create_measure("GE_ip_te_pll")
        projection = ImportanceProjection()
        graphs = []
        for workflow in workflows[:12]:
            projected = projection.transform(workflow)
            labels = {m.identifier: m.label for m in projected.modules}
            graphs.append(LabeledGraph.from_edges(labels, projected.edges()))
        exact_ged = GraphEditDistance(exact_node_limit=10, timeout=5.0)
        approx_ged = GraphEditDistance(exact_node_limit=0)

        def run_approx():
            return [
                approx_ged.distance(graphs[i], graphs[i + 1]).cost
                for i in range(len(graphs) - 1)
            ]

        approx_costs = benchmark(run_approx)
        exact_costs = [
            exact_ged.distance(graphs[i], graphs[i + 1]).cost for i in range(len(graphs) - 1)
        ]
        rows = [
            (i, f"{exact:.1f}", f"{approx:.1f}")
            for i, (exact, approx) in enumerate(zip(exact_costs, approx_costs))
        ]
        print()
        print(format_simple_table(("pair", "exact GED", "approx GED"), rows, title="GED ablation"))
        for exact, approx in zip(exact_costs, approx_costs):
            assert approx >= exact - 1e-9
        # keep the measure reference alive for clarity of intent
        assert measure is not None


class TestImportanceScorers:
    def test_frequency_scorer_agrees_with_manual_selection(self, benchmark, bench_corpus):
        knowledge = RepositoryKnowledge.from_repository(bench_corpus.repository)
        manual = ImportanceProjection()
        automatic = knowledge.importance_projection(max_frequency=0.05)
        workflows = bench_corpus.repository.workflows()[:100]

        def project_all():
            return [
                (manual.transform(w).size, automatic.transform(w).size, w.size)
                for w in workflows
            ]

        sizes = benchmark(project_all)
        manual_reduction = sum(original - m for m, _a, original in sizes)
        automatic_reduction = sum(original - a for _m, a, original in sizes)
        agreement = sum(
            1 for m, a, _original in sizes if abs(m - a) <= 2
        ) / len(sizes)
        print()
        print(
            f"manual removal: {manual_reduction} modules, "
            f"frequency-based removal: {automatic_reduction} modules, "
            f"per-workflow size agreement (within 2 modules): {agreement:.2f}"
        )
        assert manual_reduction > 0
        assert automatic_reduction > 0


class TestEnsembleAggregation:
    def test_rank_aggregation_close_to_mean_ensemble(self, benchmark, bench_ranking_evaluation):
        def evaluate():
            return bench_ranking_evaluation.evaluate_measures(["BW+MS_ip_te_pll"])

        mean_result = benchmark(evaluate)["BW+MS_ip_te_pll"]
        from repro.core import RankAggregationEnsemble, create_measure as make

        rank_ensemble = RankAggregationEnsemble(
            [make("BW"), make("MS_ip_te_pll")], name="rank(BW+MS)"
        )
        rank_result = bench_ranking_evaluation.evaluate_measure(rank_ensemble)
        print()
        print(
            f"mean-score ensemble correctness: {mean_result.mean_correctness:.3f}, "
            f"rank-aggregation ensemble correctness: {rank_result.mean_correctness:.3f}"
        )
        assert abs(mean_result.mean_correctness - rank_result.mean_correctness) < 0.3
