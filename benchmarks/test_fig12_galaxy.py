"""Figure 12 — ranking correctness on the Galaxy corpus (second data set).

Section 5.3 repeats the ranking experiment on 139 Galaxy workflows with
the module schemes gw1 (multiple attributes, uniform weights) and gll
(labels only, edit distance).

Paper shape expectations checked here:

* BW does not provide satisfying results on this data set (Galaxy
  workflows carry few annotations) — it falls clearly below its own
  performance on the Taverna corpus;
* MS and PS outperform the strict full-structure comparison GE;
* unlike on the Taverna corpus, label-only comparison (gll) is *not*
  better than comparing multiple attributes (gw1), because Galaxy labels
  are generic tool names.
"""

from __future__ import annotations

from repro.evaluation import RankingEvaluation, format_ranking_table
from repro.goldstandard import ExpertPanel, GoldStandardStudy

from bench_config import GED_TIMEOUT, describe_scale

MEASURES = [
    "MS_np_ta_gw1",
    "MS_np_ta_gll",
    "PS_np_ta_gw1",
    "PS_np_ta_gll",
    "GE_np_ta_gw1",
    "BW",
    "BT",
]


def run_galaxy_experiment(corpus):
    study = GoldStandardStudy(
        corpus, panel=ExpertPanel(expert_count=15, seed=21), seed=22, naive_measure="MS_np_ta_gw1"
    )
    data = study.run_ranking_experiment(query_count=8, candidates_per_query=10)
    evaluation = RankingEvaluation(corpus.repository, data)
    evaluation.framework.ged_timeout = GED_TIMEOUT
    return evaluation.evaluate_measures(MEASURES)


def test_fig12_galaxy_ranking(benchmark, bench_galaxy_corpus, bench_ranking_evaluation):
    results = benchmark.pedantic(
        run_galaxy_experiment, args=(bench_galaxy_corpus,), rounds=1, iterations=1
    )
    print()
    print(describe_scale())
    print(format_ranking_table(results, title="Figure 12: ranking correctness on Galaxy workflows"))

    bw_galaxy = results["BW"]
    ms_gw1 = results["MS_np_ta_gw1"]
    ms_gll = results["MS_np_ta_gll"]
    ge = results["GE_np_ta_gw1"]

    # BW collapses on the sparsely annotated Galaxy corpus: it is clearly
    # worse than on the Taverna corpus and not better than the structural
    # measures here.
    bw_taverna = bench_ranking_evaluation.evaluate_measure("BW")
    print(
        f"BW correctness: Taverna corpus {bw_taverna.mean_correctness:.3f} "
        f"vs Galaxy corpus {bw_galaxy.mean_correctness:.3f}"
    )
    assert bw_galaxy.mean_correctness < bw_taverna.mean_correctness
    assert bw_galaxy.mean_correctness <= ms_gw1.mean_correctness + 0.05

    # Structure-agnostic and substructure comparison beat full-structure GE.
    assert ge.mean_correctness <= max(ms_gw1.mean_correctness, results["PS_np_ta_gw1"].mean_correctness) + 0.05

    # Label-only comparison is not better than multi-attribute comparison here.
    assert ms_gll.mean_correctness <= ms_gw1.mean_correctness + 0.1
