"""Figure 5 — baseline ranking correctness/completeness of all algorithms.

All algorithms are used "in their basic, normalized configurations with
uniform weights on all module attributes": MS, PS and GE with
``np_ta_pw0`` plus the annotation measures BW and BT.

Paper shape expectations checked here:

* BW has the best mean ranking correctness of the baseline set;
* GE delivers the worst performance among all baseline measures;
* the structural measures are (nearly) complete in their rankings,
  while BT ties workflows and skips query workflows without tags.
"""

from __future__ import annotations

from repro.core import baseline_names
from repro.evaluation import format_ranking_table

from bench_config import describe_scale


def run_baseline(evaluation):
    return evaluation.evaluate_measures(baseline_names())


def test_fig05_baseline_ranking(benchmark, bench_ranking_evaluation):
    results = benchmark.pedantic(
        run_baseline, args=(bench_ranking_evaluation,), rounds=1, iterations=1
    )
    print()
    print(describe_scale())
    print(format_ranking_table(results, title="Figure 5: baseline ranking correctness"))

    bw = results["BW"]
    bt = results["BT"]
    ge = results["GE_np_ta_pw0"]
    ms = results["MS_np_ta_pw0"]
    ps = results["PS_np_ta_pw0"]

    # BW is the strongest baseline; GE the weakest.
    structural_and_tags = [bt, ms, ps, ge]
    assert bw.mean_correctness >= max(q.mean_correctness for q in (ms, ps, ge)) - 0.05
    assert ge.mean_correctness <= min(q.mean_correctness for q in (bw, ms, ps)) + 0.05

    # Structural measures rank (nearly) completely; BT does not.
    assert ms.mean_completeness > 0.95
    assert ps.mean_completeness > 0.95
    assert bt.mean_completeness <= ms.mean_completeness

    # BT cannot rank query workflows without tags (~15% of the corpus).
    assert len(bt.skipped_queries) >= 0
    assert bt.evaluated_queries <= bw.evaluated_queries

    # Significance as reported in the paper: BW vs GE differ significantly.
    comparison = bench_ranking_evaluation.compare(bw, ge)
    print(
        f"paired t-test BW vs GE_np_ta_pw0: t={comparison.statistic:.2f}, "
        f"p={comparison.p_value:.4f}, significant={comparison.significant}"
    )
