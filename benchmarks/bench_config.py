"""Scale configuration shared by all benchmark files.

The benchmarks regenerate the paper's tables and figures on a synthetic
corpus.  By default they run at a reduced "small" scale that finishes in
a few minutes; set ``REPRO_BENCH_SCALE=full`` to use the paper's
original corpus size and query counts.
"""

from __future__ import annotations

import os

FULL_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small").lower() == "full"

#: Scale parameters used by the session fixtures in ``conftest.py``.
SCALE = {
    "workflows": 1483 if FULL_SCALE else 400,
    "ranking_queries": 24 if FULL_SCALE else 12,
    "retrieval_queries": 8 if FULL_SCALE else 4,
    "experts": 15,
    "candidates_per_query": 10,
    "top_k": 10,
}

#: Per-pair timeout (seconds) for graph edit distance, the stand-in for the
#: paper's 5-minute SUBDUE cap.
GED_TIMEOUT = 2.0


def describe_scale() -> str:
    """One-line description printed at the top of every benchmark table."""
    label = "full (paper scale)" if FULL_SCALE else "small (default)"
    return (
        f"scale={label}: {SCALE['workflows']} workflows, "
        f"{SCALE['ranking_queries']} ranking queries, "
        f"{SCALE['retrieval_queries']} retrieval queries, {SCALE['experts']} experts"
    )
