"""Timing harness for the repository-scale batch similarity engine.

Both paths run through the public :class:`repro.api.SimilarityService`
facade: the reference ("seed") path is a ``SearchRequest`` under
``ExecutionPolicy.sequential()`` (the per-query reference scan), the
fast path is the same request under the default ``auto`` policy (the
service routes to the pruned/cached batch, or the process pool when
``--workers`` grants one).  The harness verifies that both return
*identical* ``ResultSet`` payloads — the facade's core contract — and
writes the measurements (including the diagnostics the service attaches
to every response) to ``BENCH_search.json`` at the repository root so
the perf trajectory is tracked from PR to PR.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_search.py
    REPRO_BENCH_SCALE=small python benchmarks/bench_perf_search.py --queries 8

The corpus size follows ``REPRO_BENCH_SCALE`` (``small`` = 400
workflows, ``full`` = the paper's 1483).  Exit status is non-zero if the
fast path ever disagrees with the reference path.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

_HERE = Path(__file__).resolve().parent
_ROOT = _HERE.parent
sys.path.insert(0, str(_HERE))
sys.path.insert(0, str(_ROOT / "src"))

from bench_config import SCALE, describe_scale  # noqa: E402

from repro.api import (  # noqa: E402
    ExecutionPolicy,
    PairwiseRequest,
    SearchRequest,
    SimilarityService,
)
from repro.core.framework import SimilarityFramework  # noqa: E402
from repro.corpus.generator import CorpusSpec, generate_myexperiment_corpus  # noqa: E402
from repro.text.levenshtein import levenshtein_similarity  # noqa: E402


def _result_digest(result_set) -> str:
    """A stable fingerprint of the full ranked payload (ids, scores,
    ranks) for cross-process identity checks."""
    return hashlib.sha256(repr(result_set.result_tuples()).encode("utf-8")).hexdigest()


def _rss_probe_child(args: argparse.Namespace) -> int:
    """Child mode of the sql-pushdown section: open the store, run the
    probe searches, report peak RSS.  ``ru_maxrss`` is monotonic per
    process, so each admission tier must be measured in its own process
    (the parent sets ``REPRO_FORCE_SQL_ADMISSION`` to pick the tier)."""
    import resource

    service = SimilarityService.open(
        cache_dir=Path(args.rss_cache_dir), framework=SimilarityFramework()
    )
    query_ids = service.repository.identifiers()[: args.queries]
    report: dict = {"measures": {}}
    for measure in ("BW", args.measure):
        result = service.search(
            SearchRequest(measure=measure, queries=query_ids, k=args.k)
        )
        report["measures"][measure] = {
            "path": result.diagnostics.path,
            "index_candidates": result.diagnostics.index_candidates,
            "seconds": result.diagnostics.seconds,
            "digest": _result_digest(result),
        }
    report["index_materialized"] = (
        service.index is not None or service.label_bags is not None
    )
    report["max_rss_kb"] = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    service.close()
    print(json.dumps(report))
    return 0


def run_benchmark(args: argparse.Namespace) -> dict:
    workflow_count = SCALE["workflows"]
    corpus = generate_myexperiment_corpus(
        CorpusSpec(workflow_count=workflow_count, seed=args.seed)
    )
    repository = corpus.repository
    query_ids = repository.identifiers()[: args.queries]
    print(describe_scale())
    print(
        f"top-k search benchmark: {len(query_ids)} queries over "
        f"{len(repository)} workflows, k={args.k}, measure={args.measure}"
    )

    # -- reference path (per-query sequential scan, cold caches) ------------
    levenshtein_similarity.cache_clear()
    seed_service = SimilarityService(repository, framework=SimilarityFramework())
    seed_request = SearchRequest(
        measure=args.measure,
        queries=query_ids,
        k=args.k,
        policy=ExecutionPolicy.sequential(),
    )
    seed_set = seed_service.search(seed_request)
    seed_seconds = seed_set.diagnostics.seconds
    seed_measure = seed_service.engine.framework.measure(args.measure)
    seed_comparisons = seed_measure.stats.module_pair_comparisons
    print(f"  seed path: {seed_seconds:8.2f}s  ({seed_comparisons} module comparisons)")

    # -- batch path (the service's own routing) -----------------------------
    fast_service = SimilarityService(repository, framework=SimilarityFramework())
    fast_request = SearchRequest(
        measure=args.measure,
        queries=query_ids,
        k=args.k,
        policy=ExecutionPolicy.auto(workers=args.workers),
    )
    fast_set = fast_service.search(fast_request)
    fast_seconds = fast_set.diagnostics.seconds
    prune_stats = fast_set.diagnostics.prune or {}
    cache_stats = fast_set.diagnostics.caches
    print(
        f"  fast path: {fast_seconds:8.2f}s  "
        f"({fast_set.diagnostics.path} path, prune: {prune_stats})"
    )

    # -- steady state: a second batch against warm caches -------------------
    fast_warm_seconds = fast_service.search(fast_request).diagnostics.seconds
    print(f"  fast path (warm caches): {fast_warm_seconds:8.2f}s")

    # ResultSet equality covers the full payload (hits, scores, ranks)
    # and ignores diagnostics — exactly the facade's equivalence contract.
    identical = seed_set == fast_set
    speedup = seed_seconds / fast_seconds if fast_seconds else float("inf")
    print(f"  speedup: {speedup:.1f}x  identical results: {identical}")

    # -- warm start: persist, "restart", reopen from disk --------------------
    # The fast service's caches (plus snapshot and inverted index) go to
    # a store directory; a brand-new service opened over that directory
    # stands in for a restarted process.  Cold = the first fast run
    # above (empty caches); warm = the same request served from the
    # persisted scores.
    cache_dir = Path(tempfile.mkdtemp(prefix="repro-bench-store-"))
    try:
        persist_started = time.perf_counter()
        fast_service.attach_cache_dir(cache_dir)
        fast_service.build_index()
        persist_summary = fast_service.persist()
        persist_seconds = time.perf_counter() - persist_started
        fast_service.close()

        open_started = time.perf_counter()
        warm_service = SimilarityService.open(
            cache_dir=cache_dir, framework=SimilarityFramework()
        )
        warm_open_seconds = time.perf_counter() - open_started
        warm_set = warm_service.search(fast_request)
        warm_seconds = warm_set.diagnostics.seconds
        warm_identical = warm_set == seed_set
        warm_speedup = fast_seconds / warm_seconds if warm_seconds else float("inf")
        print(
            f"  warm start: persist {persist_seconds:.2f}s "
            f"({persist_summary['pair_scores']} pair scores), reopen "
            f"{warm_open_seconds:.2f}s, search {warm_seconds:.2f}s "
            f"(cold {fast_seconds:.2f}s, {warm_speedup:.1f}x, "
            f"{warm_set.diagnostics.cache_warm_hits} warm hits, "
            f"identical: {warm_identical})"
        )

        # Annotation preselection over the persisted inverted index.
        bw_request = SearchRequest(measure="BW", queries=query_ids, k=args.k)
        bw_indexed_set = warm_service.search(bw_request)
        bw_sequential_set = warm_service.search(
            SearchRequest(
                measure="BW",
                queries=query_ids,
                k=args.k,
                policy=ExecutionPolicy.sequential(),
            )
        )
        bw_identical = bw_indexed_set == bw_sequential_set
        print(
            f"  indexed BW: {bw_indexed_set.diagnostics.seconds:.2f}s "
            f"({bw_indexed_set.diagnostics.path} path, "
            f"{bw_indexed_set.diagnostics.index_candidates} candidates over "
            f"{len(query_ids)} queries x {len(repository)} workflows, "
            f"identical: {bw_identical})"
        )
        # Resilience: corrupt the persisted store out-of-band, then time
        # the full degraded request — open detects the bad checksum,
        # quarantines the file, rebuilds from the salvaged snapshot, and
        # still serves the query bit-identically.  This is the price of
        # a quarantine-and-rebuild, paid once, on the unlucky request.
        warm_service.close()
        import sqlite3

        connection = sqlite3.connect(cache_dir / "repro_store.sqlite")
        connection.execute(
            "UPDATE pair_scores SET score = score + 0.25 "
            "WHERE rowid = (SELECT MIN(rowid) FROM pair_scores)"
        )
        connection.commit()
        connection.close()
        degraded_started = time.perf_counter()
        degraded_service = SimilarityService.open(
            cache_dir=cache_dir, framework=SimilarityFramework()
        )
        degraded_set = degraded_service.search(fast_request)
        degraded_seconds = time.perf_counter() - degraded_started
        degraded_identical = degraded_set == seed_set
        degraded_flagged = bool(degraded_set.diagnostics.degraded)
        degraded_service.close()
        print(
            f"  degraded search (quarantine + rebuild): {degraded_seconds:.2f}s "
            f"(flagged: {degraded_flagged}, identical: {degraded_identical})"
        )
        warm_report = {
            "persist_seconds": persist_seconds,
            "persisted_pair_scores": persist_summary["pair_scores"],
            "persisted_postings": persist_summary["postings"],
            "open_seconds": warm_open_seconds,
            "cold_seconds": fast_seconds,
            "warm_seconds": warm_seconds,
            "speedup": warm_speedup,
            "cache_warm_hits": warm_set.diagnostics.cache_warm_hits,
            "identical": warm_identical,
            "indexed_bw": {
                "seconds": bw_indexed_set.diagnostics.seconds,
                "path": bw_indexed_set.diagnostics.path,
                "index_candidates": bw_indexed_set.diagnostics.index_candidates,
                "scanned_pairs": len(query_ids) * len(repository),
                "identical": bw_identical,
            },
            "degraded_search_ms": degraded_seconds * 1000.0,
            "degraded_identical": degraded_identical,
            "degraded_flagged": degraded_flagged,
        }
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    # -- all-pairs (clustering) section -------------------------------------
    pairwise_ids = repository.identifiers()[: args.pairwise_workflows]
    levenshtein_similarity.cache_clear()
    pairwise_seed_set = seed_service.pairwise(
        PairwiseRequest(
            measure=args.measure,
            workflows=pairwise_ids,
            policy=ExecutionPolicy.sequential(),
        )
    )
    pairwise_seed_seconds = pairwise_seed_set.diagnostics.seconds
    pairwise_fast_set = fast_service.pairwise(
        PairwiseRequest(measure=args.measure, workflows=pairwise_ids)
    )
    pairwise_fast_seconds = pairwise_fast_set.diagnostics.seconds
    pairwise_identical = pairwise_seed_set == pairwise_fast_set
    pairwise_speedup = (
        pairwise_seed_seconds / pairwise_fast_seconds if pairwise_fast_seconds else float("inf")
    )
    print(
        f"  all-pairs ({len(pairwise_ids)} workflows, {len(pairwise_seed_set.pairs)} pairs): "
        f"seed {pairwise_seed_seconds:.2f}s, fast {pairwise_fast_seconds:.2f}s "
        f"({pairwise_speedup:.1f}x, identical: {pairwise_identical})"
    )

    # -- certified-bounds section --------------------------------------------
    # The three routes the unified CertifiedBound layer newly covers:
    # pruned PS (path-matching bound), a composed ensemble bound, and
    # the label-char-bag indexed MS prefilter.  Each is timed against
    # the sequential reference and must stay bit-identical.
    bounds_report = {}
    for bench_measure, bench_label, wants_index in (
        ("PS_ip_te_pll", "pruned_ps", False),
        ("BW+MS_ip_te_pll", "ensemble", False),
        ("MS_ip_te_pll", "indexed_ms", True),
    ):
        levenshtein_similarity.cache_clear()
        reference_service = SimilarityService(repository, framework=SimilarityFramework())
        reference_set = reference_service.search(
            SearchRequest(
                measure=bench_measure,
                queries=query_ids,
                k=args.k,
                policy=ExecutionPolicy.sequential(),
            )
        )
        levenshtein_similarity.cache_clear()
        bound_service = SimilarityService(repository, framework=SimilarityFramework())
        if wants_index:
            bound_service.build_index()
        bound_set = bound_service.search(
            SearchRequest(measure=bench_measure, queries=query_ids, k=args.k)
        )
        bound_seconds = bound_set.diagnostics.seconds
        bound_identical = bound_set == reference_set
        bound_speedup = (
            reference_set.diagnostics.seconds / bound_seconds
            if bound_seconds
            else float("inf")
        )
        bounds_report[bench_label] = {
            "measure": bench_measure,
            "seed_seconds": reference_set.diagnostics.seconds,
            "fast_seconds": bound_seconds,
            "speedup": bound_speedup,
            "identical": bound_identical,
            "path": bound_set.diagnostics.path,
            "prune": bound_set.diagnostics.prune,
            "index_candidates": bound_set.diagnostics.index_candidates,
        }
        print(
            f"  bounds/{bench_label} ({bench_measure}): "
            f"seed {reference_set.diagnostics.seconds:.2f}s, fast {bound_seconds:.2f}s "
            f"({bound_speedup:.1f}x, {bound_set.diagnostics.path} path, "
            f"identical: {bound_identical})"
        )

    # -- sql-pushdown section ------------------------------------------------
    # The SQL admission tier answers preselection straight from the
    # persisted postings, so a warm process never materializes the
    # in-memory index.  Peak RSS is compared across two child processes
    # over the same store — one forced onto the SQL tier, one onto the
    # in-memory tier — because ru_maxrss is monotonic within a process.
    sql_dir = Path(tempfile.mkdtemp(prefix="repro-bench-sqltier-"))
    try:
        setup_service = SimilarityService(repository, framework=SimilarityFramework())
        setup_service.attach_cache_dir(sql_dir)
        setup_service.build_index()
        setup_service.persist()
        setup_service.close()

        sequential_digests = {"BW": None, args.measure: _result_digest(seed_set)}
        bw_reference = SimilarityService(
            repository, framework=SimilarityFramework()
        ).search(
            SearchRequest(
                measure="BW",
                queries=query_ids,
                k=args.k,
                policy=ExecutionPolicy.sequential(),
            )
        )
        sequential_digests["BW"] = _result_digest(bw_reference)

        probes = {}
        for tier, forced in (("sql", "1"), ("memory", "0")):
            child_env = dict(os.environ, REPRO_FORCE_SQL_ADMISSION=forced)
            completed = subprocess.run(
                [
                    sys.executable,
                    str(Path(__file__).resolve()),
                    "--rss-probe",
                    "--rss-cache-dir",
                    str(sql_dir),
                    "--queries",
                    str(args.queries),
                    "-k",
                    str(args.k),
                    "--measure",
                    args.measure,
                ],
                env=child_env,
                capture_output=True,
                text=True,
                check=True,
            )
            probes[tier] = json.loads(completed.stdout.splitlines()[-1])

        sql_identical = all(
            probes["sql"]["measures"][m]["digest"] == sequential_digests[m]
            and probes["memory"]["measures"][m]["digest"] == sequential_digests[m]
            for m in sequential_digests
        )
        sql_paths_ok = (
            all(
                section["path"] == "sql-indexed"
                for section in probes["sql"]["measures"].values()
            )
            and all(
                section["path"] == "indexed"
                for section in probes["memory"]["measures"].values()
            )
            and not probes["sql"]["index_materialized"]
            and probes["memory"]["index_materialized"]
        )
        rss_delta_kb = probes["memory"]["max_rss_kb"] - probes["sql"]["max_rss_kb"]
        sql_pushdown = {
            "queries": len(query_ids),
            "sql": probes["sql"],
            "memory": probes["memory"],
            "rss_delta_kb": rss_delta_kb,
            "identical": sql_identical,
            "paths_ok": sql_paths_ok,
        }
        print(
            f"  sql pushdown: sql tier "
            f"{probes['sql']['max_rss_kb']} kB peak RSS vs in-memory "
            f"{probes['memory']['max_rss_kb']} kB (delta {rss_delta_kb} kB), "
            f"candidates "
            f"{[s['index_candidates'] for s in probes['sql']['measures'].values()]}, "
            f"identical: {sql_identical}, paths ok: {sql_paths_ok}"
        )
    finally:
        shutil.rmtree(sql_dir, ignore_errors=True)

    return {
        "benchmark": "bench_perf_search",
        "scale": describe_scale(),
        "workflows": len(repository),
        "queries": len(query_ids),
        "k": args.k,
        "measure": args.measure,
        "workers": args.workers,
        "search": {
            "seed_seconds": seed_seconds,
            "fast_seconds": fast_seconds,
            "fast_warm_seconds": fast_warm_seconds,
            "speedup": speedup,
            "identical": identical,
            "path": fast_set.diagnostics.path,
            "seed_module_comparisons": seed_comparisons,
            "prune": prune_stats,
            "caches": cache_stats,
        },
        "pairwise": {
            "workflows": len(pairwise_ids),
            "pairs": len(pairwise_seed_set.pairs),
            "seed_seconds": pairwise_seed_seconds,
            "fast_seconds": pairwise_fast_seconds,
            "speedup": pairwise_speedup,
            "identical": pairwise_identical,
            "path": pairwise_fast_set.diagnostics.path,
        },
        "warm_start": warm_report,
        "bounds": bounds_report,
        "sql_pushdown": sql_pushdown,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=32, help="number of query workflows")
    parser.add_argument("-k", type=int, default=SCALE["top_k"])
    parser.add_argument("--measure", default="MS_ip_te_pll")
    parser.add_argument("--seed", type=int, default=20140901, help="corpus generator seed")
    parser.add_argument(
        "--workers", type=int, default=None, help="process pool size for the fast path"
    )
    parser.add_argument(
        "--pairwise-workflows",
        type=int,
        default=48,
        help="pool size of the all-pairs (clustering) section",
    )
    parser.add_argument(
        "--output",
        default=str(_ROOT / "BENCH_search.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="exit non-zero if the search speedup falls below this factor",
    )
    parser.add_argument(
        "--rss-probe",
        action="store_true",
        help="internal: run as a peak-RSS probe child over --rss-cache-dir",
    )
    parser.add_argument("--rss-cache-dir", default=None, help="internal: probe store")
    args = parser.parse_args(argv)

    if args.rss_probe:
        return _rss_probe_child(args)

    report = run_benchmark(args)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if not report["search"]["identical"] or not report["pairwise"]["identical"]:
        print("FAIL: fast path results differ from the reference path", file=sys.stderr)
        return 2
    warm_start = report["warm_start"]
    if not warm_start["identical"] or not warm_start["indexed_bw"]["identical"]:
        print(
            "FAIL: warm-started/indexed results differ from the reference path",
            file=sys.stderr,
        )
        return 2
    if warm_start["cache_warm_hits"] <= 0:
        print("FAIL: warm-started service served no hits from the store", file=sys.stderr)
        return 2
    if not warm_start["degraded_identical"] or not warm_start["degraded_flagged"]:
        print(
            "FAIL: quarantine-and-rebuild search was not bit-identical "
            "or not flagged degraded",
            file=sys.stderr,
        )
        return 2
    for bench_label, section in report["bounds"].items():
        if not section["identical"]:
            print(
                f"FAIL: bounds/{bench_label} ({section['measure']}) differs "
                "from the reference path",
                file=sys.stderr,
            )
            return 2
    sql_pushdown = report["sql_pushdown"]
    if not sql_pushdown["identical"] or not sql_pushdown["paths_ok"]:
        # Identity and tier routing are hard gates; the RSS delta is
        # recorded for the perf trajectory but never fails the run.
        print(
            "FAIL: sql-pushdown admission differs from the reference path "
            "or did not stay on its forced tier",
            file=sys.stderr,
        )
        return 2
    if args.min_speedup and report["search"]["speedup"] < args.min_speedup:
        print(
            f"FAIL: speedup {report['search']['speedup']:.1f}x below "
            f"required {args.min_speedup:.1f}x",
            file=sys.stderr,
        )
        return 3
    return 0


if __name__ == "__main__":
    sys.exit(main())
