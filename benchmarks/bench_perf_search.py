"""Timing harness for the repository-scale batch similarity engine.

Compares the reference ("seed") per-query search path against the
:mod:`repro.perf` batch path on the same synthetic corpus and verifies
that both return *identical* top-k lists and scores, then writes the
measurements to ``BENCH_search.json`` at the repository root so the perf
trajectory is tracked from PR to PR.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_search.py
    REPRO_BENCH_SCALE=small python benchmarks/bench_perf_search.py --queries 8

The corpus size follows ``REPRO_BENCH_SCALE`` (``small`` = 400
workflows, ``full`` = the paper's 1483).  Exit status is non-zero if the
fast path ever disagrees with the reference path.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

_HERE = Path(__file__).resolve().parent
_ROOT = _HERE.parent
sys.path.insert(0, str(_HERE))
sys.path.insert(0, str(_ROOT / "src"))

from bench_config import SCALE, describe_scale  # noqa: E402

from repro.core.framework import SimilarityFramework  # noqa: E402
from repro.corpus.generator import CorpusSpec, generate_myexperiment_corpus  # noqa: E402
from repro.repository.search import SimilaritySearchEngine  # noqa: E402
from repro.text.levenshtein import levenshtein_similarity  # noqa: E402


def result_tuples(result_list):
    return [(hit.workflow_id, hit.similarity, hit.rank) for hit in result_list]


def run_benchmark(args: argparse.Namespace) -> dict:
    workflow_count = SCALE["workflows"]
    corpus = generate_myexperiment_corpus(
        CorpusSpec(workflow_count=workflow_count, seed=args.seed)
    )
    repository = corpus.repository
    query_ids = repository.identifiers()[: args.queries]
    print(describe_scale())
    print(
        f"top-k search benchmark: {len(query_ids)} queries over "
        f"{len(repository)} workflows, k={args.k}, measure={args.measure}"
    )

    # -- reference path (per-query sequential scan, cold caches) ------------
    levenshtein_similarity.cache_clear()
    seed_engine = SimilaritySearchEngine(repository, SimilarityFramework())
    started = time.perf_counter()
    seed_results = [seed_engine.search(qid, args.measure, k=args.k) for qid in query_ids]
    seed_seconds = time.perf_counter() - started
    seed_measure = seed_engine.framework.measure(args.measure)
    seed_comparisons = seed_measure.stats.module_pair_comparisons
    print(f"  seed path: {seed_seconds:8.2f}s  ({seed_comparisons} module comparisons)")

    # -- batch path ---------------------------------------------------------
    fast_engine = SimilaritySearchEngine(repository, SimilarityFramework())
    started = time.perf_counter()
    fast_results = fast_engine.search_batch(
        query_ids, args.measure, k=args.k, workers=args.workers
    )
    fast_seconds = time.perf_counter() - started
    prune_stats = fast_engine.last_batch_stats.as_dict()
    cache_stats = fast_engine.context.cache_stats()
    print(f"  fast path: {fast_seconds:8.2f}s  (prune: {prune_stats})")

    # -- steady state: a second batch against warm caches -------------------
    started = time.perf_counter()
    fast_engine.search_batch(query_ids, args.measure, k=args.k)
    fast_warm_seconds = time.perf_counter() - started
    print(f"  fast path (warm caches): {fast_warm_seconds:8.2f}s")

    identical = all(
        result_tuples(seed) == result_tuples(fast)
        for seed, fast in zip(seed_results, fast_results)
    )
    speedup = seed_seconds / fast_seconds if fast_seconds else float("inf")
    print(f"  speedup: {speedup:.1f}x  identical results: {identical}")

    # -- all-pairs (clustering) section -------------------------------------
    pairwise_pool = repository.workflows()[: args.pairwise_workflows]
    levenshtein_similarity.cache_clear()
    seed_instance = SimilarityFramework().measure(args.measure)
    started = time.perf_counter()
    seed_pairs = {
        (first.identifier, second.identifier): seed_instance.similarity(first, second)
        for i, first in enumerate(pairwise_pool)
        for second in pairwise_pool[i + 1:]
    }
    pairwise_seed_seconds = time.perf_counter() - started
    started = time.perf_counter()
    fast_pairs = fast_engine.pairwise_similarity(args.measure, workflows=pairwise_pool)
    pairwise_fast_seconds = time.perf_counter() - started
    pairwise_identical = seed_pairs == fast_pairs
    pairwise_speedup = (
        pairwise_seed_seconds / pairwise_fast_seconds if pairwise_fast_seconds else float("inf")
    )
    print(
        f"  all-pairs ({len(pairwise_pool)} workflows, {len(seed_pairs)} pairs): "
        f"seed {pairwise_seed_seconds:.2f}s, fast {pairwise_fast_seconds:.2f}s "
        f"({pairwise_speedup:.1f}x, identical: {pairwise_identical})"
    )

    return {
        "benchmark": "bench_perf_search",
        "scale": describe_scale(),
        "workflows": len(repository),
        "queries": len(query_ids),
        "k": args.k,
        "measure": args.measure,
        "workers": args.workers,
        "search": {
            "seed_seconds": seed_seconds,
            "fast_seconds": fast_seconds,
            "fast_warm_seconds": fast_warm_seconds,
            "speedup": speedup,
            "identical": identical,
            "seed_module_comparisons": seed_comparisons,
            "prune": prune_stats,
            "caches": cache_stats,
        },
        "pairwise": {
            "workflows": len(pairwise_pool),
            "pairs": len(seed_pairs),
            "seed_seconds": pairwise_seed_seconds,
            "fast_seconds": pairwise_fast_seconds,
            "speedup": pairwise_speedup,
            "identical": pairwise_identical,
        },
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=32, help="number of query workflows")
    parser.add_argument("-k", type=int, default=SCALE["top_k"])
    parser.add_argument("--measure", default="MS_ip_te_pll")
    parser.add_argument("--seed", type=int, default=20140901, help="corpus generator seed")
    parser.add_argument(
        "--workers", type=int, default=None, help="process pool size for the fast path"
    )
    parser.add_argument(
        "--pairwise-workflows",
        type=int,
        default=48,
        help="pool size of the all-pairs (clustering) section",
    )
    parser.add_argument(
        "--output",
        default=str(_ROOT / "BENCH_search.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="exit non-zero if the search speedup falls below this factor",
    )
    args = parser.parse_args(argv)

    report = run_benchmark(args)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if not report["search"]["identical"] or not report["pairwise"]["identical"]:
        print("FAIL: fast path results differ from the reference path", file=sys.stderr)
        return 2
    if args.min_speedup and report["search"]["speedup"] < args.min_speedup:
        print(
            f"FAIL: speedup {report['search']['speedup']:.1f}x below "
            f"required {args.min_speedup:.1f}x",
            file=sys.stderr,
        )
        return 3
    return 0


if __name__ == "__main__":
    sys.exit(main())
