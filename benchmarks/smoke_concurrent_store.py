"""Two-process concurrent writer/reader smoke test for the WAL store.

CI's fault-injection job runs this to pin ROADMAP open item 2's
multi-process discipline: one process writes pair-score batches while a
second concurrently reads the snapshot and scores out of the *same*
``cache_dir``.  Under ``journal_mode=WAL`` + ``busy_timeout`` + the
store's :class:`~repro.store.resilience.RetryPolicy`, no ``database is
locked`` error may escape either process, and the store must pass full
verification (checksums + payload decode) once both finish.

Exit code 0 on success, 1 on any escaped error or failed verification.

Usage::

    python benchmarks/smoke_concurrent_store.py [--rounds 30] [--cache-dir DIR]
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.corpus.generator import CorpusSpec, generate_myexperiment_corpus  # noqa: E402
from repro.store import RetryPolicy, WorkflowStore  # noqa: E402


def _fingerprint(index: int) -> tuple[str, ...]:
    return (f"module-{index}", f"label-{index % 7}")


def writer(cache_dir: str, rounds: int, queue) -> None:
    """Upsert score batches and snapshot rows as fast as possible."""
    try:
        store = WorkflowStore(
            cache_dir,
            retry=RetryPolicy(attempts=40, base_delay=0.005, max_delay=0.05),
        )
        for round_number in range(rounds):
            entries = [
                (_fingerprint(i), _fingerprint(i + 1), float(round_number) + i / 100.0)
                for i in range(25)
            ]
            store.save_pair_scores(f"smoke-config-{round_number % 3}", entries)
        retries = store.retry_count
        store.close()
        queue.put(("writer", "ok", retries))
    except Exception as error:  # noqa: BLE001 — the whole point is catching escapes
        queue.put(("writer", f"{type(error).__name__}: {error}", -1))


def reader(cache_dir: str, rounds: int, queue) -> None:
    """Concurrently read the snapshot and every score batch."""
    try:
        store = WorkflowStore(
            cache_dir,
            retry=RetryPolicy(attempts=40, base_delay=0.005, max_delay=0.05),
        )
        loaded = 0
        for round_number in range(rounds):
            repository = store.load_repository()
            assert repository is not None and len(repository) > 0
            for config in range(3):
                loaded += len(store.load_pair_scores(f"smoke-config-{config}"))
            time.sleep(0.002)
        store.close()
        queue.put(("reader", "ok", loaded))
    except Exception as error:  # noqa: BLE001
        queue.put(("reader", f"{type(error).__name__}: {error}", -1))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=30)
    parser.add_argument("--cache-dir", default=None)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as scratch:
        cache_dir = args.cache_dir or str(Path(scratch) / "store")
        corpus = generate_myexperiment_corpus(
            CorpusSpec(workflow_count=20, seed=42, author_count=6)
        )
        seed_store = WorkflowStore(cache_dir)
        seed_store.save_repository(corpus.repository)
        journal_mode = seed_store.stats()["journal_mode"]
        seed_store.close()
        if str(journal_mode).lower() != "wal":
            print(f"warning: WAL unavailable on this filesystem (got {journal_mode})")

        queue: multiprocessing.Queue = multiprocessing.Queue()
        processes = [
            multiprocessing.Process(target=writer, args=(cache_dir, args.rounds, queue)),
            multiprocessing.Process(target=reader, args=(cache_dir, args.rounds, queue)),
        ]
        for process in processes:
            process.start()
        outcomes = {}
        for _ in processes:
            role, status, detail = queue.get(timeout=120)
            outcomes[role] = (status, detail)
        for process in processes:
            process.join(timeout=30)

        failures = {role: s for role, (s, _d) in outcomes.items() if s != "ok"}
        final = WorkflowStore(cache_dir)
        report = final.verify()
        final.close()

        summary = {
            "journal_mode": str(journal_mode),
            "rounds": args.rounds,
            "writer_retries": outcomes.get("writer", ("missing", -1))[1],
            "reader_rows_loaded": outcomes.get("reader", ("missing", -1))[1],
            "escaped_errors": failures,
            "final_verification": report.summary(),
        }
        print(json.dumps(summary, indent=2))
        if failures:
            print(f"FAIL: errors escaped the retry layer: {failures}", file=sys.stderr)
            return 1
        if not report.ok:
            print(f"FAIL: store corrupt after concurrent run: {report.summary()}", file=sys.stderr)
            return 1
        print("OK: no lock errors escaped; store verifies clean after concurrent access")
        return 0


if __name__ == "__main__":
    sys.exit(main())
