"""Shared fixtures for the benchmark/experiment harness.

Every benchmark regenerates one table or figure of the paper's
evaluation section on a synthetic corpus (see DESIGN.md for the
substitutions).  Scale is controlled by ``REPRO_BENCH_SCALE`` (see
``bench_config.py``).  All fixtures are deterministic (fixed seeds), so
benchmark runs are repeatable.
"""

from __future__ import annotations

import pytest

from repro.core import SimilarityFramework
from repro.corpus import (
    CorpusSpec,
    GalaxyCorpusSpec,
    generate_galaxy_corpus,
    generate_myexperiment_corpus,
)
from repro.evaluation import RankingEvaluation
from repro.goldstandard import ExpertPanel, GoldStandardStudy
from repro.repository import SimilaritySearchEngine

from bench_config import GED_TIMEOUT, SCALE


@pytest.fixture(scope="session")
def bench_corpus():
    return generate_myexperiment_corpus(
        CorpusSpec(workflow_count=SCALE["workflows"], seed=20140901)
    )


@pytest.fixture(scope="session")
def bench_galaxy_corpus():
    return generate_galaxy_corpus(GalaxyCorpusSpec(workflow_count=139, seed=20140902))


@pytest.fixture(scope="session")
def bench_framework():
    return SimilarityFramework(ged_timeout=GED_TIMEOUT)


@pytest.fixture(scope="session")
def bench_study(bench_corpus):
    return GoldStandardStudy(
        bench_corpus, panel=ExpertPanel(expert_count=SCALE["experts"], seed=7), seed=13
    )


@pytest.fixture(scope="session")
def bench_ranking_data(bench_study):
    return bench_study.run_ranking_experiment(
        query_count=SCALE["ranking_queries"],
        candidates_per_query=SCALE["candidates_per_query"],
    )


@pytest.fixture(scope="session")
def bench_ranking_evaluation(bench_corpus, bench_ranking_data, bench_framework):
    return RankingEvaluation(
        bench_corpus.repository, bench_ranking_data, framework=bench_framework
    )


@pytest.fixture(scope="session")
def bench_engine(bench_corpus, bench_framework):
    return SimilaritySearchEngine(bench_corpus.repository, bench_framework)


@pytest.fixture(scope="session")
def bench_retrieval_data(bench_study, bench_ranking_data, bench_engine):
    """Experiment-2 relevance judgements seeded with the BW and MS result lists.

    Further measures evaluated against this data are rated on demand via
    the study (RetrievalEvaluation(study=...)), mirroring the paper's
    "experts were asked to complete the ratings".
    """
    return bench_study.run_retrieval_experiment(
        ["BW", "MS_ip_te_pll"],
        ranking_data=bench_ranking_data,
        query_count=SCALE["retrieval_queries"],
        k=SCALE["top_k"],
        engine=bench_engine,
    )
