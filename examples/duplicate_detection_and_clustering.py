#!/usr/bin/env python3
"""Duplicate detection and functional clustering of a repository.

The introduction of the paper motivates workflow similarity with
repository-management tasks: finding functionally equivalent workflows
and grouping workflows into functional clusters.  This example runs both
on a synthetic corpus subset and checks the clusters against the latent
family ground truth.

Run with::

    python examples/duplicate_detection_and_clustering.py [corpus_size [subset_size]]
"""

from __future__ import annotations

import sys

from repro.api import ClusterRequest, PairwiseRequest, SimilarityService
from repro.corpus import CorpusSpec, generate_myexperiment_corpus


def main() -> None:
    corpus_size = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    subset_size = int(sys.argv[2]) if len(sys.argv) > 2 else 60
    corpus = generate_myexperiment_corpus(CorpusSpec(workflow_count=corpus_size, seed=23))
    truth = corpus.ground_truth

    # Work on the life-science subset (as the paper's evaluation does) and
    # keep the pairwise matrix small enough to print.
    workflow_ids = corpus.life_science_workflow_ids()[:subset_size]
    measure = "BW+MS_ip_te_pll"
    service = SimilarityService(corpus.repository)
    print(f"computing pairwise similarities of {len(workflow_ids)} workflows ...")
    pairwise = service.pairwise(PairwiseRequest(measure=measure, workflows=workflow_ids))
    print(
        f"  ({len(pairwise.pairs)} pairs on the {pairwise.diagnostics.path} path, "
        f"{pairwise.diagnostics.seconds:.2f}s)"
    )

    # Near-duplicate detection: the ResultSet carries every scored pair.
    duplicates = sorted(
        (pair for pair in pairwise.pairs if pair[2] >= 0.75),
        key=lambda pair: -pair[2],
    )
    print()
    print(f"{len(duplicates)} near-duplicate pairs (similarity >= 0.75):")
    for first_id, second_id, similarity in duplicates[:10]:
        same_family = truth.family_of(first_id) == truth.family_of(second_id)
        print(
            f"  {first_id} ~ {second_id}  similarity={similarity:.3f}  "
            f"{'same family' if same_family else 'DIFFERENT family'}"
        )

    # Functional clustering via connected components over a similarity
    # threshold.  The cluster request re-aggregates workflow pairs, but
    # every module-pair score comes straight from the service's caches
    # warmed by the pairwise request above.
    clusters = service.cluster(
        ClusterRequest(measure=measure, threshold=0.55, workflows=workflow_ids)
    ).cluster_sets()
    multi = [cluster for cluster in clusters if len(cluster) > 1]
    print()
    print(f"{len(clusters)} clusters at threshold 0.55, {len(multi)} of them non-singleton")
    print()
    print("largest clusters and the workflow families they contain:")
    for cluster in multi[:5]:
        families = sorted({truth.family_of(workflow_id) for workflow_id in cluster})
        titles = {
            corpus.repository.get(workflow_id).annotations.title for workflow_id in cluster
        }
        print(f"  cluster of {len(cluster)}: families={families}")
        for title in sorted(titles)[:3]:
            print(f"      e.g. {title}")

    # How well do the clusters recover the latent families?  (purity)
    total = 0
    pure = 0
    for cluster in clusters:
        families = [truth.family_of(workflow_id) for workflow_id in cluster]
        dominant = max(set(families), key=families.count)
        pure += families.count(dominant)
        total += len(families)
    print()
    print(f"cluster purity against the latent workflow families: {pure / total:.2%}")


if __name__ == "__main__":
    main()
