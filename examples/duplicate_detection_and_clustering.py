#!/usr/bin/env python3
"""Duplicate detection and functional clustering of a repository.

The introduction of the paper motivates workflow similarity with
repository-management tasks: finding functionally equivalent workflows
and grouping workflows into functional clusters.  This example runs both
on a synthetic corpus subset and checks the clusters against the latent
family ground truth.

Run with::

    python examples/duplicate_detection_and_clustering.py
"""

from __future__ import annotations

from repro.core import create_measure
from repro.corpus import CorpusSpec, generate_myexperiment_corpus
from repro.repository import find_duplicates, pairwise_similarities, threshold_clusters


def main() -> None:
    corpus = generate_myexperiment_corpus(CorpusSpec(workflow_count=120, seed=23))
    truth = corpus.ground_truth

    # Work on the life-science subset (as the paper's evaluation does) and
    # keep the pairwise matrix small enough to print.
    workflows = [
        corpus.repository.get(workflow_id)
        for workflow_id in corpus.life_science_workflow_ids()[:60]
    ]
    measure = create_measure("BW+MS_ip_te_pll")
    print(f"computing pairwise similarities of {len(workflows)} workflows ...")
    similarities = pairwise_similarities(workflows, measure)

    # Near-duplicate detection.
    duplicates = find_duplicates(workflows, measure, threshold=0.75, similarities=similarities)
    print()
    print(f"{len(duplicates)} near-duplicate pairs (similarity >= 0.75):")
    for pair in duplicates[:10]:
        same_family = truth.family_of(pair.first_id) == truth.family_of(pair.second_id)
        print(
            f"  {pair.first_id} ~ {pair.second_id}  similarity={pair.similarity:.3f}  "
            f"{'same family' if same_family else 'DIFFERENT family'}"
        )

    # Functional clustering via connected components over a similarity threshold.
    clusters = threshold_clusters(workflows, measure, threshold=0.55, similarities=similarities)
    multi = [cluster for cluster in clusters if len(cluster) > 1]
    print()
    print(f"{len(clusters)} clusters at threshold 0.55, {len(multi)} of them non-singleton")
    print()
    print("largest clusters and the workflow families they contain:")
    for cluster in multi[:5]:
        families = sorted({truth.family_of(workflow_id) for workflow_id in cluster})
        titles = {
            corpus.repository.get(workflow_id).annotations.title for workflow_id in cluster
        }
        print(f"  cluster of {len(cluster)}: families={families}")
        for title in sorted(titles)[:3]:
            print(f"      e.g. {title}")

    # How well do the clusters recover the latent families?  (purity)
    total = 0
    pure = 0
    for cluster in clusters:
        families = [truth.family_of(workflow_id) for workflow_id in cluster]
        dominant = max(set(families), key=families.count)
        pure += families.count(dominant)
        total += len(families)
    print()
    print(f"cluster purity against the latent workflow families: {pure / total:.2%}")


if __name__ == "__main__":
    main()
