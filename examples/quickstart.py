#!/usr/bin/env python3
"""Quickstart: compare two scientific workflows with every class of measure.

Builds the two example workflows from Figure 1 of the paper (a KEGG
pathway analysis and a "Get Pathway-Genes by Entrez gene id" workflow),
then compares them with annotation-based, structural and ensemble
similarity measures, and shows the effect of the importance projection.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SimilarityFramework, WorkflowBuilder
from repro.core import ImportanceProjection, create_measure


def build_kegg_pathway_analysis():
    """Workflow 1189: KEGG pathway analysis (Figure 1a, simplified)."""
    return (
        WorkflowBuilder(
            "1189",
            title="KEGG pathway analysis",
            description=(
                "This workflow takes a KEGG gene id, retrieves the pathways the gene "
                "participates in and renders coloured pathway diagrams."
            ),
            tags=("kegg", "pathway", "gene", "bioinformatics"),
            author="alice",
        )
        .add_module(
            "get_pathways",
            label="get_pathways_by_genes",
            module_type="wsdl",
            description="Retrieves the KEGG pathways for a gene identifier",
            service_authority="KEGG",
            service_name="KEGGService",
            service_uri="http://soap.genome.jp/KEGG.wsdl",
        )
        .add_module(
            "split_ids",
            label="Split_string_into_list",
            module_type="localworker",
            description="Splits a string into a list of strings",
        )
        .add_module(
            "color_pathway",
            label="color_pathway_by_objects",
            module_type="wsdl",
            description="Colours pathway maps by the given objects",
            service_authority="KEGG",
            service_name="KEGGService",
            service_uri="http://soap.genome.jp/KEGG.wsdl",
        )
        .add_module(
            "render_report",
            label="Render_report",
            module_type="beanshell",
            script='StringBuilder html = new StringBuilder("<html>");',
        )
        .chain("get_pathways", "split_ids", "color_pathway", "render_report")
        .build()
    )


def build_get_pathway_genes():
    """Workflow 2805: Get Pathway-Genes by Entrez gene id (Figure 1b, simplified)."""
    return (
        WorkflowBuilder(
            "2805",
            title="Get Pathway-Genes by Entrez gene id",
            description=(
                "Given an Entrez gene id, this workflow maps the gene to KEGG, fetches the "
                "pathways and returns the list of genes on each pathway."
            ),
            tags=("kegg", "entrez", "gene"),
            author="bob",
        )
        .add_module(
            "convert_id",
            label="convert_entrez_to_kegg",
            module_type="wsdl",
            description="Converts Entrez gene ids to KEGG gene ids",
            service_authority="KEGG",
            service_name="KEGGService",
            service_uri="http://soap.genome.jp/KEGG.wsdl",
        )
        .add_module(
            "get_pathways",
            label="getPathwaysByGenes",
            module_type="wsdl",
            description="Retrieves the KEGG pathways for a gene identifier",
            service_authority="KEGG",
            service_name="KEGGService",
            service_uri="http://soap.genome.jp/KEGG.wsdl",
        )
        .add_module(
            "merge_list",
            label="Merge_string_list",
            module_type="stringmerge",
            description="Merges a list of strings into a single string",
        )
        .add_module(
            "get_genes",
            label="get_genes_by_pathway",
            module_type="wsdl",
            description="Lists the genes contained in a KEGG pathway",
            service_authority="KEGG",
            service_name="KEGGService",
            service_uri="http://soap.genome.jp/KEGG.wsdl",
        )
        .chain("convert_id", "get_pathways", "merge_list", "get_genes")
        .build()
    )


def main() -> None:
    first = build_kegg_pathway_analysis()
    second = build_get_pathway_genes()
    print(first.describe())
    print(second.describe())
    print()

    framework = SimilarityFramework()
    measures = [
        "BW",               # bag of words over title + description
        "BT",               # bag of tags
        "MS_np_ta_pw0",     # module sets, baseline configuration
        "MS_ip_te_pll",     # module sets, best configuration of the paper
        "PS_ip_te_pll",     # path sets, best configuration
        "GE_ip_te_pll",     # graph edit distance with importance projection
        "BW+MS_ip_te_pll",  # the paper's best ensemble
    ]
    print(f"{'measure':<22}{'similarity(1189, 2805)':>25}")
    print("-" * 47)
    for name in measures:
        value = framework.similarity(first, second, name)
        print(f"{name:<22}{value:>25.3f}")

    # The importance projection removes trivial shim modules before comparing.
    projection = ImportanceProjection()
    projected = projection.transform(first)
    print()
    print(
        f"importance projection: {first.identifier} keeps "
        f"{projected.size} of {first.size} modules "
        f"({', '.join(m.label for m in projected.modules)})"
    )

    # Detailed output of a single measure: the module mapping behind MS.
    measure = create_measure("MS_ip_te_pll")
    detail = measure.compare(first, second)
    print()
    print("module mapping of MS_ip_te_pll (module of 1189 -> module of 2805, similarity):")
    for source, target, weight in detail.extras["mapping"]:
        print(f"  {source:<30} -> {target:<30} {weight:.2f}")


if __name__ == "__main__":
    main()
