#!/usr/bin/env python3
"""Import real workflow files (Galaxy .ga / SCUFL-like XML) and compare them.

The similarity framework is format-agnostic: any workflow brought into
the internal model can be compared with any measure.  This example
writes two Galaxy ``.ga`` documents and one Taverna-style XML document
to a temporary directory, parses them back through the format parsers,
applies the paper's dataset preparation (sub-workflow inlining and port
removal), and compares the results across formats.

Run with::

    python examples/galaxy_import.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import SimilarityFramework
from repro.corpus import GalaxyCorpusSpec, generate_galaxy_corpus
from repro.workflow import (
    parse_galaxy_file,
    parse_scufl_file,
    prepare_workflow,
    write_galaxy,
    write_scufl,
)


def main() -> None:
    # Materialise a few synthetic workflows in their native file formats.
    galaxy_corpus = generate_galaxy_corpus(GalaxyCorpusSpec(workflow_count=6, seed=3))
    workflows = galaxy_corpus.repository.workflows()

    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        galaxy_a = directory / "rna_seq_a.ga"
        galaxy_b = directory / "rna_seq_b.ga"
        scufl_path = directory / "taverna_pathway.xml"

        galaxy_a.write_text(write_galaxy(workflows[0]))
        galaxy_b.write_text(write_galaxy(workflows[1]))
        scufl_path.write_text(write_scufl(workflows[2]))

        print("files written:")
        for path in (galaxy_a, galaxy_b, scufl_path):
            print(f"  {path.name}: {path.stat().st_size} bytes")

        # Parse them back through the format-specific parsers.
        first = prepare_workflow(parse_galaxy_file(galaxy_a))
        second = prepare_workflow(parse_galaxy_file(galaxy_b))
        third = prepare_workflow(parse_scufl_file(scufl_path))

    print()
    for workflow in (first, second, third):
        print(workflow.describe(), f"[format: {workflow.source_format}]")

    framework = SimilarityFramework()
    print()
    print("cross-format comparison (module labels + structure, gw1 scheme):")
    pairs = [(first, second), (first, third), (second, third)]
    for a, b in pairs:
        structural = framework.similarity(a, b, "MS_np_ta_gw1")
        annotation = framework.similarity(a, b, "BW")
        print(
            f"  {a.identifier:<14} vs {b.identifier:<14} "
            f"MS_np_ta_gw1={structural:.3f}  BW={annotation:.3f}"
        )

    print()
    print(
        "Note how the annotation-based measure is uninformative for the sparsely "
        "annotated Galaxy workflows, while the structural measure still separates "
        "related from unrelated pipelines (the finding behind Figure 12)."
    )


if __name__ == "__main__":
    main()
