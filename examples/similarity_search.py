#!/usr/bin/env python3
"""Similarity search over a workflow repository (the paper's retrieval use case).

Generates a synthetic myExperiment-style corpus, picks a query workflow,
and retrieves the top-10 most similar workflows under several measures —
the setting of Section 5.2 of the paper.  The latent corpus ground truth
is used to annotate each hit with the "true" relation to the query
(same family / same domain / unrelated), so the differences between
annotation-based and structural search are visible directly.

Run with::

    python examples/similarity_search.py [corpus_size]
"""

from __future__ import annotations

import sys

from repro.api import SearchRequest, SimilarityService
from repro.corpus import CorpusSpec, generate_myexperiment_corpus
from repro.repository import RepositoryKnowledge


def relation(corpus, query_id: str, candidate_id: str) -> str:
    truth = corpus.ground_truth
    if truth.family_of(query_id) == truth.family_of(candidate_id):
        return "same family"
    if truth.domain_of(query_id) == truth.domain_of(candidate_id):
        return "same domain"
    return "other domain"


def main() -> None:
    corpus_size = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    print(f"generating a synthetic myExperiment-style corpus of {corpus_size} workflows ...")
    corpus = generate_myexperiment_corpus(CorpusSpec(workflow_count=corpus_size, seed=7))
    stats = corpus.repository.statistics()
    print(
        f"corpus: {stats.workflow_count} workflows, "
        f"{stats.mean_modules_per_workflow:.1f} modules/workflow on average, "
        f"{stats.untagged_fraction:.0%} without tags"
    )

    # Pick a query workflow that belongs to a family with several members so
    # there is something meaningful to find.
    truth = corpus.ground_truth
    families: dict[str, list[str]] = {}
    for workflow_id, info in truth.variants.items():
        families.setdefault(info.family_id, []).append(workflow_id)
    family = max(families.values(), key=len)
    query_id = family[0]
    query = corpus.repository.get(query_id)
    print()
    print(f"query: {query.describe()}")
    print(f"the query's family has {len(family)} members in the corpus")

    # One long-lived service answers every request; the execution policy
    # defaults to `auto`, so the service itself routes each measure to
    # the fastest bit-identical path (pruned / cached batch scan).
    service = SimilarityService(corpus.repository)
    for measure in ("BW", "MS_ip_te_pll", "BW+MS_ip_te_pll"):
        result_set = service.search(SearchRequest(measure=measure, queries=[query_id], k=10))
        diagnostics = result_set.diagnostics
        print()
        print(
            f"top-10 results for measure {measure} "
            f"({diagnostics.path} path, {diagnostics.seconds:.2f}s):"
        )
        print(f"  {'rank':<5}{'workflow':<12}{'score':<8}{'relation':<14}title")
        for hit in result_set.for_query(query_id):
            workflow = corpus.repository.get(hit.workflow_id)
            print(
                f"  {hit.rank:<5}{hit.workflow_id:<12}{hit.similarity:<8.3f}"
                f"{relation(corpus, query_id, hit.workflow_id):<14}"
                f"{workflow.annotations.title[:48]}"
            )

    # Repository knowledge: the most reused modules are trivial shims, which
    # is exactly what the importance projection removes.
    knowledge = RepositoryKnowledge.from_repository(corpus.repository)
    print()
    print("most frequently reused module signatures in the corpus:")
    for signature, count in knowledge.most_common_modules(5):
        print(f"  {signature:<40} used by {count} workflows")


if __name__ == "__main__":
    main()
