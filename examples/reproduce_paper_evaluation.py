#!/usr/bin/env python3
"""Reproduce the paper's full evaluation pipeline end to end (small scale).

This example walks through everything Section 4 and 5 of the paper do:

1. generate a corpus standing in for the myExperiment data set;
2. run the two-phase expert study (simulated panel of 15 raters), i.e.
   collect Likert ratings, build BioConsert consensus rankings and
   retrieval relevance judgements;
3. evaluate baseline and tuned similarity measures on ranking
   correctness/completeness and retrieval precision;
4. print the resulting tables (the same ones the benchmark harness under
   ``benchmarks/`` regenerates per figure).

Run with::

    python examples/reproduce_paper_evaluation.py [corpus_size] [n_queries]
"""

from __future__ import annotations

import sys
import time

from repro.core import SimilarityFramework, baseline_names
from repro.corpus import CorpusSpec, generate_myexperiment_corpus
from repro.evaluation import (
    RankingEvaluation,
    RetrievalEvaluation,
    format_agreement_table,
    format_precision_table,
    format_ranking_table,
    inter_annotator_agreement,
)
from repro.goldstandard import ExpertPanel, GoldStandardStudy
from repro.repository import SimilaritySearchEngine

TUNED_MEASURES = ["MS_ip_te_pll", "PS_ip_te_pll", "GE_ip_te_pll", "BW+MS_ip_te_pll"]


def main() -> None:
    corpus_size = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    query_count = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    started = time.time()

    print(f"[1/4] generating corpus of {corpus_size} workflows ...")
    corpus = generate_myexperiment_corpus(CorpusSpec(workflow_count=corpus_size, seed=31))

    print("[2/4] running the simulated expert study (ranking phase) ...")
    study = GoldStandardStudy(corpus, panel=ExpertPanel(expert_count=15, seed=5), seed=17)
    ranking_data = study.run_ranking_experiment(
        query_count=query_count, candidates_per_query=10
    )
    print(
        f"      {ranking_data.pair_count()} rated workflow pairs, "
        f"{len(ranking_data.ratings)} individual ratings"
    )
    print()
    print(format_agreement_table(inter_annotator_agreement(ranking_data)))

    print()
    print("[3/4] evaluating ranking correctness (baseline + tuned configurations) ...")
    framework = SimilarityFramework(ged_timeout=2.0)
    evaluation = RankingEvaluation(corpus.repository, ranking_data, framework=framework)
    results = evaluation.evaluate_measures(baseline_names() + TUNED_MEASURES)
    print(format_ranking_table(results, title="Ranking correctness vs expert consensus"))

    print()
    print("[4/4] retrieval over the whole corpus (precision at k) ...")
    engine = SimilaritySearchEngine(corpus.repository, framework)
    retrieval_data = study.run_retrieval_experiment(
        ["BW", "MS_ip_te_pll"],
        ranking_data=ranking_data,
        query_count=min(4, query_count),
        k=10,
        engine=engine,
    )
    retrieval = RetrievalEvaluation(engine, retrieval_data, study=study, max_k=10)
    curves = retrieval.evaluate_measures(["BW", "MS_ip_te_pll", "PS_ip_te_pll"])
    for threshold in ("related", "similar", "very_similar"):
        print()
        print(format_precision_table(curves, threshold=threshold))

    print()
    print(f"done in {time.time() - started:.1f}s")


if __name__ == "__main__":
    main()
