"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` is the documented install path; this file lets
``python setup.py develop`` work in fully offline environments where
pip cannot build an editable wheel.  The ``py.typed`` marker ships with
the package so type checkers consume the inline annotations of the
``repro.api`` facade.
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description="Similarity search for scientific workflows (Starlinger et al., PVLDB 2014)",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    include_package_data=True,
    zip_safe=False,
    python_requires=">=3.10",
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
