"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` is the documented install path; this file lets
``python setup.py develop`` work in fully offline environments where
pip cannot build an editable wheel.
"""
from setuptools import setup

setup()
